package proxion

import (
	"runtime"

	"repro/internal/chain"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/pipeline"
)

// resilienceSource is the structural shape of a chain.Reader that tracks
// its own retry/breaker activity (the faultchain resilient client). The
// engine discovers it by type assertion so this package stays free of a
// faultchain dependency.
type resilienceSource interface {
	ResilienceCounters() (retries, breakerTrips int64)
}

// AnalyzeOptions tunes the streaming analysis engine. The zero value
// selects production defaults: every stage sized from GOMAXPROCS, the
// bytecode-dedup cache on, no history stage, a 4096-contract reorder
// window, unbounded verdict cache.
type AnalyzeOptions struct {
	// FilterWorkers, ProbeWorkers, ClassifyWorkers, HistoryWorkers and
	// PairWorkers size each stage's pool; zero picks a default derived
	// from GOMAXPROCS (the probe stage, where emulation time concentrates,
	// gets the most).
	FilterWorkers   int
	ProbeWorkers    int
	ClassifyWorkers int
	HistoryWorkers  int
	PairWorkers     int
	// ChannelDepth bounds the inter-stage channels (default 4×GOMAXPROCS,
	// minimum 16).
	ChannelDepth int
	// Window bounds the number of contracts in flight at once: fed but not
	// yet emitted to the sink. Together with ChannelDepth and the worker
	// counts it is the engine's whole memory bound — peak usage of a
	// streaming run does not grow with corpus size. Default 4096.
	Window int
	// CacheCapacity bounds the bytecode-dedup verdict cache to at most this
	// many distinct code hashes, evicted least-recently-used. Zero keeps
	// the cache unbounded (every unique bytecode is remembered for the
	// whole run — fine for batch runs, not for million-contract streams).
	CacheCapacity int
	// DisableDedup turns off the bytecode-dedup verdict cache, probing
	// every address with a fresh emulation — the ablation mode. It implies
	// DisableStructural (the structural index is a second-level key of the
	// verdict cache).
	DisableDedup bool
	// DisableStructural turns off the second-level structural-fingerprint
	// promotion, keeping only the exact bytecode-hash dedup: near-clones
	// (EIP-1167 stamps, compiler twins) are each emulated once instead of
	// being promoted from their family exemplar.
	DisableStructural bool
	// WithHistory enables the logic-history stage: each storage proxy's
	// full implementation history is recovered with Algorithm 1 and every
	// historical pair is collision-analyzed into Result.Histories (or the
	// Item.History field in streaming runs).
	WithHistory bool
	// Stats, when non-nil, is the externally-owned counter set the run
	// updates instead of a private one. All Stats fields are atomic, so a
	// caller may read them live while the run is in flight — how a
	// long-running query service exposes per-shard progress without
	// waiting for the end-of-run snapshot. The final Snapshot is taken
	// from the same counters.
	Stats *pipeline.Stats
}

// The streaming engine's work-item types; idx is the contract's position
// in the source stream, which anchors result ordering.
type (
	feedItem struct {
		idx  int
		addr etypes.Address
	}
	probeItem struct {
		idx  int
		addr etypes.Address
		code []byte
	}
	classifyItem struct {
		idx  int
		code []byte
		rep  Report
	}
	pairItem struct {
		idx          int
		proxy, logic etypes.Address
	}
	historyItem struct {
		idx int
		rep Report
	}
)

// AnalyzeAll runs the full streaming pipeline over every alive contract:
// disassembly filter → emulation probe (bytecode-deduplicated) →
// classification → pair collision analysis, all stages concurrent with no
// barrier in between — a detected proxy enters pair analysis while later
// contracts are still being probed. Results keep the chain's deterministic
// contract order.
func (d *Detector) AnalyzeAll(sources SourceProvider) *Result {
	return d.AnalyzeAllWithOptions(sources, AnalyzeOptions{})
}

// AnalyzeAllWithOptions is AnalyzeAll with explicit engine tuning. If even
// the contract enumeration fails terminally (node down before the run
// started), the result is an empty — not partial, not panicking — run.
func (d *Detector) AnalyzeAllWithOptions(sources SourceProvider, opts AnalyzeOptions) *Result {
	var addrs []etypes.Address
	chain.CaptureReadError(func() { addrs = d.chain.Contracts() })
	return d.analyze(SliceSource(addrs), sources, opts)
}

// AnalyzeSince runs the same streaming pipeline restricted to contracts
// deployed after the given block height — the incremental mode a
// production deployment uses to keep pace with the chain instead of
// re-scanning all 36M contracts. AnalyzeSince(0, …) is equivalent to
// AnalyzeAll. A contract whose deployment block cannot be read is included
// conservatively rather than silently dropped.
func (d *Detector) AnalyzeSince(height uint64, sources SourceProvider) *Result {
	var all []etypes.Address
	chain.CaptureReadError(func() { all = d.chain.Contracts() })
	// Filter lazily inside the source so the CreatedAt reads overlap the
	// pipeline instead of forming a serial pre-pass.
	i := 0
	src := SourceFunc(func() (etypes.Address, bool) {
		for i < len(all) {
			addr := all[i]
			i++
			created := uint64(0)
			unknown := chain.CaptureReadError(func() { created = d.chain.CreatedAt(addr) }) != nil
			if unknown || created > height {
				return addr, true
			}
		}
		return etypes.Address{}, false
	})
	return d.analyze(src, sources, AnalyzeOptions{})
}

// analyze is the collecting wrapper over AnalyzeStream that the
// slice-returning entry points share: it runs the stream into a
// CollectSink and packages the accumulated reports with the run snapshot.
func (d *Detector) analyze(src AddressSource, sources SourceProvider, opts AnalyzeOptions) *Result {
	sink := NewCollectSink()
	snap := d.AnalyzeStream(src, sources, sink, opts)
	res := sink.Result()
	res.Stats = snap
	return res
}

// AnalyzeStream is the one whole-chain analysis code path: every entry
// point (full scans, incremental scans, experiments, the CLI) funnels
// here. It pulls addresses from src, runs them through the staged
// pipeline, and emits one finalized Item per contract to sink, in source
// order. Memory is bounded end to end: the feeder blocks when
// opts.Window contracts are in flight, every inter-stage channel is
// bounded by opts.ChannelDepth, and nothing per-contract survives past
// its emission — so a run over a million contracts peaks at the same
// working set as a run over ten thousand.
func (d *Detector) AnalyzeStream(src AddressSource, sources SourceProvider, sink ReportSink, opts AnalyzeOptions) *pipeline.Snapshot {
	procs := runtime.GOMAXPROCS(0)
	size := func(configured, def int) int {
		if configured > 0 {
			return configured
		}
		if def < 1 {
			return 1
		}
		return def
	}
	depth := opts.ChannelDepth
	if depth <= 0 {
		depth = 4 * procs
		if depth < 16 {
			depth = 16
		}
	}
	window := opts.Window
	if window <= 0 {
		window = 4096
	}
	if !opts.DisableDedup {
		d.verdicts.setCapacity(opts.CacheCapacity)
		d.structural.setCapacity(opts.CacheCapacity)
	}
	d.structuralOff = opts.DisableStructural

	eng := pipeline.New()
	stats := opts.Stats
	if stats == nil {
		stats = new(pipeline.Stats)
	}
	tracker := newStreamTracker(window, sink, stats)
	apiBefore := d.chain.APICalls()
	var retriesBefore, tripsBefore int64
	resil, hasResil := d.chain.(resilienceSource)
	if hasResil {
		retriesBefore, tripsBefore = resil.ResilienceCounters()
	}

	// The probe stage gets the full CPU budget — emulation dominates the
	// per-contract cost — while the cheap bookends share smaller pools.
	stFilter := eng.NewStage("disasm-filter", size(opts.FilterWorkers, procs/4))
	stProbe := eng.NewStage("emulation-probe", size(opts.ProbeWorkers, procs))
	stClassify := eng.NewStage("classification", size(opts.ClassifyWorkers, procs/4))
	var stHistory *pipeline.Stage
	if opts.WithHistory {
		stHistory = eng.NewStage("logic-history", size(opts.HistoryWorkers, procs/2))
	}
	stPair := eng.NewStage("pair-analysis", size(opts.PairWorkers, procs/2))

	feedCh := make(chan feedItem, depth)
	probeCh := make(chan probeItem, depth)
	classifyCh := make(chan classifyItem, depth)
	pairCh := make(chan pairItem, depth)
	var histCh chan historyItem
	if opts.WithHistory {
		histCh = make(chan historyItem, depth)
	}

	// Feeder: one window slot per address — when the window is full the
	// pull from src stops until the sink catches up (backpressure against
	// generation/ingestion upstream).
	eng.Go(func() {
		for {
			addr, ok := src.Next()
			if !ok {
				break
			}
			idx := tracker.acquire()
			stats.Scanned.Add(1)
			feedCh <- feedItem{idx: idx, addr: addr}
		}
		close(feedCh)
	})

	// Stage 1 — disassembly filter (Section 4.1): contracts without a
	// DELEGATECALL opcode are rejected without an emulation. A terminal
	// read failure degrades the contract to Unresolved (Reader contract).
	pipeline.Run(eng, stFilter, feedCh, func(it feedItem) {
		var code []byte
		if re := chain.CaptureReadError(func() { code = d.chain.Code(it.addr) }); re != nil {
			tracker.deliverReport(it.idx, unresolvedReport(it.addr, re), 0)
			return
		}
		switch {
		case len(code) == 0:
			stats.NoCode.Add(1)
			tracker.deliverReport(it.idx, Report{Address: it.addr, Reason: "no code at address"}, 0)
		case !disasm.ContainsOp(code, evm.DELEGATECALL):
			stats.FilterRejected.Add(1)
			tracker.deliverReport(it.idx, Report{Address: it.addr, Reason: "bytecode contains no DELEGATECALL opcode"}, 0)
		default:
			probeCh <- probeItem{idx: it.idx, addr: it.addr, code: code}
		}
	}, func() { close(probeCh) })

	// Stage 2 — emulation probe (Section 4.2), one emulation per *unique*
	// runtime bytecode thanks to the verdict cache, and one per *structural
	// family* of cleanly forwarding near-clones thanks to the second-level
	// fingerprint index.
	pipeline.Run(eng, stProbe, probeCh, func(it probeItem) {
		var rep Report
		re := chain.CaptureReadError(func() {
			if opts.DisableDedup {
				rep = d.emulateProbe(it.addr, it.code, CraftCallData(it.addr, it.code)).rep
				stats.Emulations.Add(1)
			} else {
				var tr probeTrace
				rep, tr = d.checkDeduped(it.addr, it.code)
				switch tr.source {
				case sourceExactHit:
					stats.CacheHits.Add(1)
				case sourceStructuralHit:
					stats.CacheHits.Add(1)
					stats.StructuralHits.Add(1)
				default:
					stats.Emulations.Add(1)
				}
				if tr.analyzed {
					stats.StaticSummaries.Add(1)
				}
				if tr.rejected {
					stats.StructuralRejects.Add(1)
				}
			}
		})
		if re != nil {
			rep = unresolvedReport(it.addr, re)
		} else if rep.EmulationErr != nil {
			stats.EmulationAborts.Add(1)
		}
		classifyCh <- classifyItem{idx: it.idx, code: it.code, rep: rep}
	}, func() { close(classifyCh) })

	// Stage 3 — classification (Table 4) and fan-out: a detected proxy
	// flows straight into pair analysis (and optionally history recovery)
	// with no barrier. The report is handed to the tracker BEFORE the
	// fan-out sends, declaring how many sub-analyses are outstanding, so
	// the item cannot be emitted incomplete.
	pipeline.Run(eng, stClassify, classifyCh, func(it classifyItem) {
		rep := it.rep
		if rep.IsProxy {
			rep.Standard = classify(it.code, rep)
			stats.ProxiesDetected.Add(1)
		}
		fanout := 0
		if rep.IsProxy && !rep.Logic.IsZero() {
			fanout = 1
			if histCh != nil {
				fanout = 2
			}
		}
		tracker.deliverReport(it.idx, rep, fanout)
		if fanout > 0 {
			if histCh != nil {
				histCh <- historyItem{idx: it.idx, rep: rep}
			}
			pairCh <- pairItem{idx: it.idx, proxy: rep.Address, logic: rep.Logic}
		}
	}, func() {
		close(pairCh)
		if histCh != nil {
			close(histCh)
		}
	})

	// Stage 4 (optional) — logic-history recovery via Algorithm 1. A read
	// failure degrades the contract's report to Unresolved at emission.
	if opts.WithHistory {
		pipeline.Run(eng, stHistory, histCh, func(it historyItem) {
			var h HistoricalAnalysis
			if re := chain.CaptureReadError(func() { h = d.AnalyzePairHistory(it.rep, sources) }); re != nil {
				tracker.deliverHistory(it.idx, nil, re)
				return
			}
			stats.HistoriesRecovered.Add(1)
			tracker.deliverHistory(it.idx, &h, nil)
		}, nil)
	}

	// Stage 5 — pair collision analysis (Section 5), degrading like stage 4.
	pipeline.Run(eng, stPair, pairCh, func(it pairItem) {
		var pa PairAnalysis
		if re := chain.CaptureReadError(func() { pa = d.AnalyzePair(it.proxy, it.logic, sources) }); re != nil {
			tracker.deliverPair(it.idx, nil, re)
			return
		}
		stats.PairsAnalyzed.Add(1)
		tracker.deliverPair(it.idx, &pa, nil)
	}, nil)

	eng.Wait()
	stats.StorageAPICalls.Add(d.chain.APICalls() - apiBefore)
	if hasResil {
		r, t := resil.ResilienceCounters()
		stats.Retries.Add(r - retriesBefore)
		stats.BreakerTrips.Add(t - tripsBefore)
	}
	return eng.Snapshot(stats)
}
