package proxion

import (
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/chain"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/solc"
	"repro/internal/u256"
)

// structAddr builds a deterministic test address from a small ordinal.
func structAddr(n byte) etypes.Address {
	var a etypes.Address
	a[18] = 0x7a
	a[19] = n
	return a
}

// TestStructuralCloneFamilyOneEmulation is the headline property: N
// EIP-1167 stamps of N *different* logic contracts are N distinct
// bytecodes — the exact-hash cache cannot help — yet one emulation of the
// family exemplar serves every stamp, each re-anchored to its own
// embedded implementation address.
func TestStructuralCloneFamilyOneEmulation(t *testing.T) {
	c := chain.New()
	const n = 6
	logics := make([]etypes.Address, n)
	stamps := make([]etypes.Address, n)
	for i := 0; i < n; i++ {
		logics[i] = structAddr(byte(0x10 + i))
		stamps[i] = structAddr(byte(0x40 + i))
		c.InstallContract(stamps[i], disasm.MinimalProxyRuntime(logics[i]))
	}

	d := NewDetector(c)
	res := d.AnalyzeAll(nil)
	for i, rep := range res.Reports {
		if !rep.IsProxy || rep.Logic != logics[i] || rep.Target != TargetHardcoded {
			t.Errorf("stamp %d: proxy=%v logic=%s target=%s, want its own logic %s",
				i, rep.IsProxy, rep.Logic, rep.Target, logics[i])
		}
		if rep.Standard != StandardEIP1167 {
			t.Errorf("stamp %d classified %s, want EIP-1167", i, rep.Standard)
		}
	}
	if res.Stats.Emulations != 1 {
		t.Errorf("emulations = %d, want 1 for the whole clone family", res.Stats.Emulations)
	}
	if res.Stats.StructuralHits != n-1 || res.Stats.CacheHits != n-1 {
		t.Errorf("structural hits = %d, cache hits = %d, want %d structural promotions",
			res.Stats.StructuralHits, res.Stats.CacheHits, n-1)
	}
	// One static summary for the exemplar cross-check, one per promotion.
	if res.Stats.StaticSummaries != n {
		t.Errorf("static summaries = %d, want %d", res.Stats.StaticSummaries, n)
	}
	if res.Stats.StructuralRejects != 0 {
		t.Errorf("structural rejects = %d, want 0", res.Stats.StructuralRejects)
	}

	// The ablation switch restores one emulation per distinct bytecode.
	off := NewDetector(c).AnalyzeAllWithOptions(nil, AnalyzeOptions{DisableStructural: true})
	if off.Stats.Emulations != n || off.Stats.StructuralHits != 0 {
		t.Errorf("structural off: emulations = %d structural hits = %d, want %d and 0",
			off.Stats.Emulations, off.Stats.StructuralHits, n)
	}
}

// TestStructuralStorageTwinsReanchor covers the storage side: two
// compiler twins differing only in their 32-byte implementation slot
// constant share a fingerprint, and the promoted follower must report its
// *own* slot and its own slot's current value — byte-for-byte what a
// fresh emulation would have reported.
func TestStructuralStorageTwinsReanchor(t *testing.T) {
	c := chain.New()
	slotA := etypes.Keccak([]byte("twin.slot.a"))
	slotB := etypes.Keccak([]byte("twin.slot.b"))
	logicA, logicB := structAddr(0x01), structAddr(0x02)
	pA, pB := structAddr(0x51), structAddr(0x52)
	c.InstallContract(pA, solc.MustCompile(&solc.Contract{
		Name: "TwinA", Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: slotA}}))
	c.InstallContract(pB, solc.MustCompile(&solc.Contract{
		Name: "TwinB", Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: slotB}}))
	c.SetStorageDirect(pA, slotA, etypes.HashFromWord(logicA.Word()))
	c.SetStorageDirect(pB, slotB, etypes.HashFromWord(logicB.Word()))

	d := NewDetector(c)
	repA, trA := d.checkDeduped(pA, c.Code(pA))
	if trA.source != sourceEmulated || !trA.analyzed || trA.rejected {
		t.Fatalf("exemplar trace = %+v, want analyzed emulation", trA)
	}
	if !repA.IsProxy || repA.ImplSlot != slotA || repA.Logic != logicA {
		t.Fatalf("exemplar report wrong: %+v", repA)
	}

	repB, trB := d.checkDeduped(pB, c.Code(pB))
	if trB.source != sourceStructuralHit {
		t.Fatalf("twin trace = %+v, want structural hit", trB)
	}
	if repB.ImplSlot != slotB || repB.Logic != logicB || repB.Target != TargetStorage {
		t.Fatalf("twin not re-anchored to its own slot: %+v", repB)
	}

	// Promotion parity: the promoted report must equal the report an
	// emulation-only detector produces for the same address.
	plain := NewDetector(c)
	plain.structuralOff = true
	want, _ := plain.checkDeduped(pB, c.Code(pB))
	if !reflect.DeepEqual(repB, want) {
		t.Fatalf("promoted report diverges from emulated report:\n got %+v\nwant %+v", repB, want)
	}
}

// maskedJumpForwarder is a forwarding proxy whose entry jump target is a
// PUSH32 immediate: dynamically a clean hard-coded proxy, but the masked
// immediate decides control flow, so two fingerprint-twins could diverge.
// The family must never register.
func maskedJumpForwarder(target etypes.Address) []byte {
	var imm [32]byte
	imm[31] = 34 // JUMPDEST position: 1 + 32 (PUSH32) + 1 (JUMP)
	return (&asm.Program{}).
		PushBytes(imm[:]).Op(evm.JUMP).
		Op(evm.JUMPDEST).
		// calldatacopy(0, 0, calldatasize)
		Op(evm.CALLDATASIZE).PushUint(0).PushUint(0).Op(evm.CALLDATACOPY).
		// delegatecall(gas, target, 0, calldatasize, 0, 0)
		PushUint(0).PushUint(0).Op(evm.CALLDATASIZE).PushUint(0).
		PushBytes(target[:]).Op(evm.GAS).Op(evm.DELEGATECALL).
		Op(evm.STOP).MustAssemble()
}

func TestStructuralRefusesMaskedImmFlow(t *testing.T) {
	c := chain.New()
	p1, p2 := structAddr(0x61), structAddr(0x62)
	t1, t2 := structAddr(0x03), structAddr(0x04)
	c.InstallContract(p1, maskedJumpForwarder(t1))
	c.InstallContract(p2, maskedJumpForwarder(t2))

	d := NewDetector(c)
	rep1, tr1 := d.checkDeduped(p1, c.Code(p1))
	if !rep1.IsProxy || rep1.Logic != t1 {
		t.Fatalf("exemplar verdict wrong: %+v", rep1)
	}
	if !tr1.analyzed || !tr1.rejected {
		t.Fatalf("exemplar trace = %+v, want analyzed and rejected (MaskedImmFlow)", tr1)
	}

	// The family is unregistered: the twin is emulated, not promoted, and
	// its static summary is never even attempted.
	rep2, tr2 := d.checkDeduped(p2, c.Code(p2))
	if tr2.source != sourceEmulated || tr2.analyzed {
		t.Fatalf("twin trace = %+v, want plain emulation of unregistered family", tr2)
	}
	if !rep2.IsProxy || rep2.Logic != t2 {
		t.Fatalf("twin verdict wrong: %+v", rep2)
	}
}

// guardedForwarder reads a pause-flag slot before forwarding: the verdict
// depends on per-address state beyond the implementation target, which
// the structural layer cannot compare across different bytecodes.
func guardedForwarder(target etypes.Address) []byte {
	return (&asm.Program{}).
		PushUint(7).Op(evm.SLOAD).JumpI("halt").
		Op(evm.CALLDATASIZE).PushUint(0).PushUint(0).Op(evm.CALLDATACOPY).
		PushUint(0).PushUint(0).Op(evm.CALLDATASIZE).PushUint(0).
		PushBytes(target[:]).Op(evm.GAS).Op(evm.DELEGATECALL).
		Op(evm.STOP).
		Label("halt").PushUint(0).PushUint(0).Op(evm.REVERT).
		MustAssemble()
}

func TestStructuralRefusesGuardReadingFallback(t *testing.T) {
	c := chain.New()
	p1, p2 := structAddr(0x71), structAddr(0x72)
	c.InstallContract(p1, guardedForwarder(structAddr(0x05)))
	c.InstallContract(p2, guardedForwarder(structAddr(0x06)))

	d := NewDetector(c)
	rep1, tr1 := d.checkDeduped(p1, c.Code(p1))
	if !rep1.IsProxy {
		t.Fatalf("exemplar verdict wrong: %+v", rep1)
	}
	// Guard slots present: the exemplar is not even statically analyzed
	// and the family never registers.
	if tr1.analyzed || tr1.rejected {
		t.Fatalf("exemplar trace = %+v, want no structural attempt", tr1)
	}
	if _, tr2 := d.checkDeduped(p2, c.Code(p2)); tr2.source != sourceEmulated {
		t.Fatalf("twin trace = %+v, want plain emulation", tr2)
	}
}

// TestStructuralRefusesPackedSlotTwin pins validate-before-promote on the
// follower side: the family is registered by a clean exemplar, but a twin
// whose own slot value carries nonzero upper bytes is refused (the
// uncached path classifies a packed slot as hard-coded) and re-emulated —
// cached-with-promotion analysis must match uncached analysis exactly.
func TestStructuralRefusesPackedSlotTwin(t *testing.T) {
	c := chain.New()
	slotA := etypes.Keccak([]byte("packed.twin.a"))
	slotB := etypes.Keccak([]byte("packed.twin.b"))
	pA, pB := structAddr(0x81), structAddr(0x82)
	c.InstallContract(pA, solc.MustCompile(&solc.Contract{
		Name: "CleanTwin", Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: slotA}}))
	c.InstallContract(pB, solc.MustCompile(&solc.Contract{
		Name: "PackedTwin", Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: slotB}}))
	c.SetStorageDirect(pA, slotA, etypes.HashFromWord(structAddr(0x07).Word()))
	// pB's slot packs an admin flag into the upper bytes next to the address.
	packed := structAddr(0x08).Word().Or(u256.One().Shl(200))
	c.SetStorageDirect(pB, slotB, etypes.HashFromWord(packed))

	d := NewDetector(c)
	if _, tr := d.checkDeduped(pA, c.Code(pA)); tr.rejected || !tr.analyzed {
		t.Fatalf("clean exemplar trace = %+v, want registration", tr)
	}
	repB, trB := d.checkDeduped(pB, c.Code(pB))
	if trB.source != sourceEmulated || !trB.rejected {
		t.Fatalf("packed twin trace = %+v, want rejected promotion and re-emulation", trB)
	}

	plain := NewDetector(c)
	plain.structuralOff = true
	want, _ := plain.checkDeduped(pB, c.Code(pB))
	if !reflect.DeepEqual(repB, want) {
		t.Fatalf("packed twin diverges from uncached analysis:\n got %+v\nwant %+v", repB, want)
	}
}

// TestStructuralRefusesSelfTargetTwin: a follower whose embedded target is
// its own address cannot inherit the family verdict (the exact cache's
// self-target refusal, applied per promotion).
func TestStructuralRefusesSelfTargetTwin(t *testing.T) {
	c := chain.New()
	p1, p2 := structAddr(0x91), structAddr(0x92)
	c.InstallContract(p1, disasm.MinimalProxyRuntime(structAddr(0x09)))
	c.InstallContract(p2, disasm.MinimalProxyRuntime(p2)) // delegates to itself

	d := NewDetector(c)
	if _, tr := d.checkDeduped(p1, c.Code(p1)); tr.rejected {
		t.Fatalf("exemplar trace = %+v, want registration", tr)
	}
	rep2, tr2 := d.checkDeduped(p2, c.Code(p2))
	if tr2.source != sourceEmulated || !tr2.rejected {
		t.Fatalf("self-target twin trace = %+v, want rejected promotion", tr2)
	}

	plain := NewDetector(c)
	plain.structuralOff = true
	want, _ := plain.checkDeduped(p2, c.Code(p2))
	if !reflect.DeepEqual(rep2, want) {
		t.Fatalf("self-target twin diverges from uncached analysis:\n got %+v\nwant %+v", rep2, want)
	}
}

// TestStructuralIndexEviction: a bounded index forgets least-recently-used
// families; a re-encountered fingerprint becomes a fresh leader and is
// emulated again — promotion can only skip work for remembered families.
func TestStructuralIndexEviction(t *testing.T) {
	s := newStructuralIndex()
	s.setCapacity(2)
	fps := []etypes.Hash{
		etypes.Keccak([]byte("f1")), etypes.Keccak([]byte("f2")), etypes.Keccak([]byte("f3")),
	}
	for _, fp := range fps {
		cls, leader := s.class(fp)
		if !leader {
			t.Fatalf("fingerprint %s: want fresh leadership", fp)
		}
		cls.registered = true
		close(cls.done)
	}
	if s.len() != 2 {
		t.Fatalf("index len = %d, want 2 after eviction", s.len())
	}
	// f1 was evicted: its next arrival leads again.
	if _, leader := s.class(fps[0]); !leader {
		t.Fatal("evicted family must restart with a fresh leader")
	}
	// f3 is still resident.
	if cls, leader := s.class(fps[2]); leader || !cls.registered {
		t.Fatal("resident family lost its registration")
	}
}
