package proxion_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/proxion"
	"repro/internal/solc"
	"repro/internal/u256"
)

// randomContract builds a contract with a random storage layout and a
// getter+setter per variable — the raw material for the round-trip
// properties below.
type randomContract struct {
	src *solc.Contract
}

var varTypes = []solc.VarType{
	solc.TypeBool, solc.TypeUint8, solc.TypeUint16, solc.TypeUint32,
	solc.TypeUint64, solc.TypeUint128, solc.TypeUint256, solc.TypeAddress,
	solc.TypeBytes32,
}

func genContract(r *rand.Rand) randomContract {
	n := 1 + r.Intn(8)
	c := &solc.Contract{Name: "Rnd"}
	for i := 0; i < n; i++ {
		c.Vars = append(c.Vars, solc.Var{
			Name: fmt.Sprintf("v%d", i),
			Type: varTypes[r.Intn(len(varTypes))],
		})
	}
	for i, v := range c.Vars {
		c.Funcs = append(c.Funcs,
			solc.Func{
				ABI:  abi.Function{Name: fmt.Sprintf("get%d", i)},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: v.Name}},
			},
			solc.Func{
				ABI:  abi.Function{Name: fmt.Sprintf("set%d", i), Params: []string{"uint256"}},
				Body: []solc.Stmt{solc.AssignArg{Var: v.Name, Arg: i % 2}},
			},
		)
	}
	return randomContract{src: c}
}

var contractQuickCfg = &quick.Config{
	MaxCount: 150,
	Values: func(args []reflect.Value, r *rand.Rand) {
		for i := range args {
			args[i] = reflect.ValueOf(genContract(r))
		}
	},
}

// TestPropertyAccessRecoveryMatchesLayout: for any randomly generated
// contract, the bytecode-level symbolic analysis must recover exactly the
// declared storage layout — every variable's (slot, offset, size) appears
// as both a read and a write, and nothing else does.
func TestPropertyAccessRecoveryMatchesLayout(t *testing.T) {
	f := func(rc randomContract) bool {
		code := solc.MustCompile(rc.src)
		accs := proxion.ExtractStorageAccesses(code)

		type loc struct {
			slot         uint64
			offset, size int
		}
		reads := make(map[loc]bool)
		writes := make(map[loc]bool)
		for _, a := range accs {
			l := loc{a.Slot.Word().Uint64(), a.Offset, a.Size}
			switch a.Kind {
			case proxion.AccessRead:
				reads[l] = true
			case proxion.AccessWrite:
				writes[l] = true
			}
		}
		for _, sv := range rc.src.Layout() {
			l := loc{sv.Slot, sv.Offset, sv.Size}
			if !reads[l] {
				t.Logf("missing read of %s at %+v; accesses: %+v", sv.Var.Name, l, accs)
				return false
			}
			if !writes[l] {
				t.Logf("missing write of %s at %+v", sv.Var.Name, l)
				return false
			}
		}
		// No spurious locations beyond the declared layout.
		declared := make(map[loc]bool)
		for _, sv := range rc.src.Layout() {
			declared[loc{sv.Slot, sv.Offset, sv.Size}] = true
		}
		for l := range reads {
			if !declared[l] {
				t.Logf("spurious read %+v", l)
				return false
			}
		}
		for l := range writes {
			if !declared[l] {
				t.Logf("spurious write %+v", l)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, contractQuickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDispatcherRecoversAllSelectors: dispatcher-pattern extraction
// finds exactly the declared function selectors of any generated contract.
func TestPropertyDispatcherRecoversAllSelectors(t *testing.T) {
	f := func(rc randomContract) bool {
		code := solc.MustCompile(rc.src)
		got := disasm.DispatcherSelectors(code)
		want := make(map[[4]byte]bool)
		for _, s := range rc.src.Selectors() {
			want[s] = true
		}
		if len(got) != len(want) {
			t.Logf("selector count %d != %d", len(got), len(want))
			return false
		}
		for _, s := range got {
			if !want[s] {
				t.Logf("spurious selector %x", s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, contractQuickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCraftedCallDataNeverCollides: the crafted probe selector
// avoids every PUSH4 immediate for any generated contract.
func TestPropertyCraftedCallDataNeverCollides(t *testing.T) {
	addr := etypes.MustAddress("0x00000000000000000000000000000000000a0a0a")
	f := func(rc randomContract) bool {
		code := solc.MustCompile(rc.src)
		probe := proxion.CraftCallData(addr, code)
		var sel [4]byte
		copy(sel[:], probe)
		for _, avoid := range disasm.Push4Candidates(code) {
			if sel == avoid {
				return false
			}
		}
		return len(probe) >= 4
	}
	if err := quick.Check(f, contractQuickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyGettersRoundTripThroughEVM: for any generated contract, each
// setter/getter pair round-trips a value through real EVM execution with
// correct packed-field masking (neighbouring variables stay intact).
func TestPropertyGettersRoundTripThroughEVM(t *testing.T) {
	sender := etypes.MustAddress("0x00000000000000000000000000000000000b0b0b")
	cfg := &quick.Config{
		MaxCount: 60,
		Values:   contractQuickCfg.Values,
	}
	f := func(rc randomContract) bool {
		c := chain.New()
		target := etypes.MustAddress("0x00000000000000000000000000000000000c0c0c")
		c.InstallContract(target, solc.MustCompile(rc.src))

		// Set every variable to a distinct value, then read them all back.
		layout := rc.src.Layout()
		for i := range rc.src.Vars {
			arg := u256.FromUint64(uint64(0xA0 + i))
			sel := abi.SelectorOf(fmt.Sprintf("set%d(uint256)", i))
			args := []u256.Int{arg, arg} // setter reads arg i%2
			rc2 := c.Execute(sender, target, abi.EncodeCall(sel, args...), 0, u256.Zero())
			if !rc2.Status {
				t.Logf("set%d failed: %v", i, rc2.Err)
				return false
			}
		}
		for i, sv := range layout {
			sel := abi.SelectorOf(fmt.Sprintf("get%d()", i))
			rc2 := c.Execute(sender, target, abi.EncodeCall(sel), 0, u256.Zero())
			if !rc2.Status {
				return false
			}
			got := u256.FromBytes(rc2.Output)
			// The stored value is the written value truncated to the
			// field width.
			want := u256.FromUint64(uint64(0xA0 + i)).And(maskFor(sv.Size))
			if !got.Eq(want) {
				t.Logf("var %d (%s, %d bytes): got %s want %s", i, sv.Var.Type, sv.Size, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func maskFor(size int) u256.Int {
	return u256.One().Shl(uint(size * 8)).Sub(u256.One())
}

// TestParallelDetectionRaceFree runs many detections concurrently over one
// frozen chain; meant to be exercised with -race.
func TestParallelDetectionRaceFree(t *testing.T) {
	implSlot := etypes.HashFromWord(u256.FromUint64(7))
	c := newChainWithPair(t, implSlot)
	d := proxion.NewDetector(c)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if !d.Check(proxyAt).IsProxy {
					t.Error("detection flapped under concurrency")
					return
				}
				d.AnalyzePair(proxyAt, logicAt, nil)
			}
		}()
	}
	wg.Wait()
}
