package proxion_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/chain"
	"repro/internal/dataset"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/proxion"
	"repro/internal/solc"
	"repro/internal/u256"
)

// sequentialReference reproduces the pre-pipeline analysis shape: one
// Check per address in chain order, then one AnalyzePair per detected
// proxy, all on a single goroutine with no dedup cache in play (Check
// always emulates). It is the oracle the streaming engine must match.
func sequentialReference(c *chain.Chain, sources proxion.SourceProvider) *proxion.Result {
	d := proxion.NewDetector(c)
	res := &proxion.Result{}
	for _, addr := range c.Contracts() {
		rep := d.Check(addr)
		res.Reports = append(res.Reports, rep)
		if rep.IsProxy && !rep.Logic.IsZero() {
			res.Pairs = append(res.Pairs, d.AnalyzePair(rep.Address, rep.Logic, sources))
		}
	}
	return res
}

// stripStats clears the fields that legitimately differ between runs
// (timing-dependent instrumentation) so results can be DeepEqual-compared.
func stripStats(res *proxion.Result) *proxion.Result {
	res.Stats = nil
	return res
}

// TestPipelineMatchesSequentialReference is the engine's core determinism
// contract: across several generated landscapes, the concurrent deduped
// pipeline must produce byte-for-byte the same reports and pairs as a
// sequential uncached pass.
func TestPipelineMatchesSequentialReference(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			pop := dataset.Generate(dataset.Config{Seed: seed, Contracts: 300})
			want := stripStats(sequentialReference(pop.Chain, pop.Registry))

			got := stripStats(proxion.NewDetector(pop.Chain).AnalyzeAll(pop.Registry))
			if !reflect.DeepEqual(got, want) {
				t.Fatal("pipeline AnalyzeAll diverges from sequential reference")
			}

			ablated := stripStats(proxion.NewDetector(pop.Chain).
				AnalyzeAllWithOptions(pop.Registry, proxion.AnalyzeOptions{DisableDedup: true}))
			if !reflect.DeepEqual(ablated, want) {
				t.Fatal("no-dedup pipeline diverges from sequential reference")
			}
		})
	}
}

// TestAnalyzeSinceZeroEqualsAnalyzeAll pins the satellite fix: AnalyzeSince
// now runs on the same engine, so a zero-height incremental scan must be
// identical to a full scan.
func TestAnalyzeSinceZeroEqualsAnalyzeAll(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 3, Contracts: 300})
	full := stripStats(proxion.NewDetector(pop.Chain).AnalyzeAll(pop.Registry))
	since := stripStats(proxion.NewDetector(pop.Chain).AnalyzeSince(0, pop.Registry))
	if !reflect.DeepEqual(since, full) {
		t.Fatal("AnalyzeSince(0, …) differs from AnalyzeAll")
	}
}

// TestAnalyzeAllDeterministic runs the concurrent pipeline twice over the
// same chain and requires identical output — scheduling must not leak into
// results.
func TestAnalyzeAllDeterministic(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 11, Contracts: 300})
	a := stripStats(proxion.NewDetector(pop.Chain).AnalyzeAll(pop.Registry))
	b := stripStats(proxion.NewDetector(pop.Chain).AnalyzeAll(pop.Registry))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two AnalyzeAll runs over the same chain differ")
	}
}

// storageProxyCode compiles one storage-slot proxy; every call yields the
// same bytecode, so installing it at several addresses models the paper's
// duplicate-dominated landscape.
func storageProxyCode(slot etypes.Hash) []byte {
	return solc.MustCompile(&solc.Contract{
		Name:     "DupProxy",
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: slot},
	})
}

// TestDedupCacheResolvesLogicPerAddress installs byte-identical upgradeable
// proxies pointing at different logic contracts. The cache must serve the
// emulation verdict once and still resolve each duplicate's own logic from
// its own storage — caching the verdict, not the logic address.
func TestDedupCacheResolvesLogicPerAddress(t *testing.T) {
	c := chain.New()
	slot := etypes.HashFromWord(u256.FromUint64(3))
	code := storageProxyCode(slot)

	logics := []etypes.Address{
		etypes.MustAddress("0x0000000000000000000000000000000000009001"),
		etypes.MustAddress("0x0000000000000000000000000000000000009002"),
		etypes.MustAddress("0x0000000000000000000000000000000000009003"),
	}
	logicCode := solc.MustCompile(simpleLogic())
	for _, l := range logics {
		c.InstallContract(l, logicCode)
	}

	proxies := make(map[etypes.Address]etypes.Address) // proxy -> its logic
	for i, l := range logics {
		p := etypes.MustAddress(fmt.Sprintf("0x00000000000000000000000000000000000091%02x", i))
		c.InstallContract(p, code)
		c.SetStorageDirect(p, slot, etypes.HashFromWord(l.Word()))
		proxies[p] = l
	}

	res := proxion.NewDetector(c).AnalyzeAll(nil)
	for _, rep := range res.Reports {
		wantLogic, isProxy := proxies[rep.Address]
		if !isProxy {
			continue
		}
		if !rep.IsProxy {
			t.Fatalf("duplicate proxy %s not detected", rep.Address)
		}
		if rep.Logic != wantLogic {
			t.Errorf("proxy %s resolved logic %s, want its own %s", rep.Address, rep.Logic, wantLogic)
		}
	}
	if res.Stats.CacheHits != int64(len(proxies)-1) {
		t.Errorf("cache hits = %d, want %d (one emulation per unique bytecode)",
			res.Stats.CacheHits, len(proxies)-1)
	}
}

// TestDedupCacheMinimalProxyClones checks the hard-coded side: EIP-1167
// clones of the same logic share one bytecode (and one emulation), while a
// clone of a different logic has different bytecode and gets its own entry.
func TestDedupCacheMinimalProxyClones(t *testing.T) {
	c := chain.New()
	logicCode := solc.MustCompile(simpleLogic())
	logicA := etypes.MustAddress("0x0000000000000000000000000000000000009001")
	logicB := etypes.MustAddress("0x0000000000000000000000000000000000009002")
	c.InstallContract(logicA, logicCode)
	c.InstallContract(logicB, logicCode)

	cloneOfA1 := etypes.MustAddress("0x0000000000000000000000000000000000009101")
	cloneOfA2 := etypes.MustAddress("0x0000000000000000000000000000000000009102")
	cloneOfB := etypes.MustAddress("0x0000000000000000000000000000000000009103")
	c.InstallContract(cloneOfA1, disasm.MinimalProxyRuntime(logicA))
	c.InstallContract(cloneOfA2, disasm.MinimalProxyRuntime(logicA))
	c.InstallContract(cloneOfB, disasm.MinimalProxyRuntime(logicB))

	res := proxion.NewDetector(c).AnalyzeAll(nil)
	want := map[etypes.Address]etypes.Address{cloneOfA1: logicA, cloneOfA2: logicA, cloneOfB: logicB}
	for _, rep := range res.Reports {
		wantLogic, isClone := want[rep.Address]
		if !isClone {
			continue
		}
		if !rep.IsProxy || rep.Logic != wantLogic {
			t.Errorf("clone %s: proxy=%v logic=%s, want logic %s", rep.Address, rep.IsProxy, rep.Logic, wantLogic)
		}
		if rep.Standard != proxion.StandardEIP1167 {
			t.Errorf("clone %s classified %s, want EIP-1167", rep.Address, rep.Standard)
		}
	}
	// cloneOfA2 duplicates cloneOfA1's bytes (exact hit); cloneOfB is a
	// distinct bytecode but a structural near-clone of the family, so the
	// second level promotes it without emulating: one emulation serves all
	// three stamps.
	if res.Stats.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2", res.Stats.CacheHits)
	}
	if res.Stats.StructuralHits != 1 {
		t.Errorf("structural hits = %d, want 1", res.Stats.StructuralHits)
	}
	if res.Stats.Emulations != 1 {
		t.Errorf("emulations = %d, want 1 (one per clone family)", res.Stats.Emulations)
	}
}

// TestDedupCachePackedSlotNotTransferred covers the divergence trap: a
// duplicate whose implementation slot carries nonzero upper bytes (a packed
// slot) must not inherit the recorded storage-target verdict — the uncached
// path classifies it differently, and cached analysis must match uncached
// analysis exactly.
func TestDedupCachePackedSlotNotTransferred(t *testing.T) {
	build := func() *chain.Chain {
		c := chain.New()
		slot := etypes.HashFromWord(u256.FromUint64(3))
		code := storageProxyCode(slot)
		logic := etypes.MustAddress("0x0000000000000000000000000000000000009001")
		c.InstallContract(logic, solc.MustCompile(simpleLogic()))

		clean := etypes.MustAddress("0x0000000000000000000000000000000000009201")
		packed := etypes.MustAddress("0x0000000000000000000000000000000000009202")
		c.InstallContract(clean, code)
		c.SetStorageDirect(clean, slot, etypes.HashFromWord(logic.Word()))
		c.InstallContract(packed, code)
		// Same address in the low 20 bytes, flag bits packed above it.
		packedVal := logic.Word().Or(u256.FromUint64(1).Shl(240))
		c.SetStorageDirect(packed, slot, etypes.HashFromWord(packedVal))
		return c
	}

	c := build()
	got := stripStats(proxion.NewDetector(c).AnalyzeAll(nil))
	want := stripStats(sequentialReference(build(), nil))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("packed-slot duplicate diverges from uncached analysis")
	}
}

// TestVerdictCacheConcurrentDuplicates floods a wide probe pool with
// byte-identical contracts; run under -race this exercises the cache's
// locking, and the counters prove exactly one emulation happened.
func TestVerdictCacheConcurrentDuplicates(t *testing.T) {
	c := chain.New()
	slot := etypes.HashFromWord(u256.FromUint64(5))
	code := storageProxyCode(slot)
	logicCode := solc.MustCompile(simpleLogic())

	const n = 64
	want := make(map[etypes.Address]etypes.Address, n)
	for i := 0; i < n; i++ {
		logic := etypes.MustAddress(fmt.Sprintf("0x000000000000000000000000000000000000a0%02x", i))
		proxy := etypes.MustAddress(fmt.Sprintf("0x000000000000000000000000000000000000b0%02x", i))
		c.InstallContract(logic, logicCode)
		c.InstallContract(proxy, code)
		c.SetStorageDirect(proxy, slot, etypes.HashFromWord(logic.Word()))
		want[proxy] = logic
	}

	res := proxion.NewDetector(c).AnalyzeAllWithOptions(nil, proxion.AnalyzeOptions{
		ProbeWorkers: 8,
	})
	for _, rep := range res.Reports {
		wantLogic, isProxy := want[rep.Address]
		if !isProxy {
			continue
		}
		if !rep.IsProxy || rep.Logic != wantLogic {
			t.Fatalf("proxy %s: got logic %s, want %s", rep.Address, rep.Logic, wantLogic)
		}
	}
	// sync.Once serializes the first probe per bytecode, so the 63
	// concurrent duplicates must all be hits on the one proxy bytecode.
	if res.Stats.CacheHits != n-1 {
		t.Errorf("cache hits = %d, want %d", res.Stats.CacheHits, n-1)
	}
}

// TestAnalyzeWithHistory enables the optional history stage and checks it
// produces the same analyses as calling AnalyzePairHistory directly.
func TestAnalyzeWithHistory(t *testing.T) {
	implSlot := etypes.HashFromWord(u256.FromUint64(7))
	c := newChainWithPair(t, implSlot)
	// Upgrade the proxy once so the history has two versions.
	c.AdvanceBlocks(10)
	logic2 := etypes.MustAddress("0x0000000000000000000000000000000000009077")
	c.InstallContract(logic2, solc.MustCompile(simpleLogic()))
	c.AdvanceBlocks(10)
	c.SetStorageDirect(proxyAt, implSlot, etypes.HashFromWord(logic2.Word()))

	res := proxion.NewDetector(c).AnalyzeAllWithOptions(nil, proxion.AnalyzeOptions{WithHistory: true})
	if len(res.Histories) != 1 {
		t.Fatalf("histories = %d, want 1", len(res.Histories))
	}
	h := res.Histories[0]
	if h.Proxy != proxyAt {
		t.Fatalf("history proxy = %s, want %s", h.Proxy, proxyAt)
	}
	if len(h.Pairs) != 2 {
		t.Fatalf("history pairs = %d, want 2 (original + upgrade)", len(h.Pairs))
	}

	var rep proxion.Report
	for _, r := range res.Reports {
		if r.Address == proxyAt {
			rep = r
		}
	}
	d := proxion.NewDetector(c)
	want := d.AnalyzePairHistory(rep, nil)
	if !reflect.DeepEqual(h, want) {
		t.Fatal("pipeline history differs from direct AnalyzePairHistory")
	}
	if res.Stats.HistoriesRecovered != 1 {
		t.Errorf("histories_recovered = %d, want 1", res.Stats.HistoriesRecovered)
	}
}
