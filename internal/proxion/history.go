package proxion

import (
	"sort"

	"repro/internal/etypes"
)

// LogicHistory recovers every logic-contract address ever stored in the
// proxy's implementation slot using the paper's Algorithm 1: a recursive
// binary partition over block heights that compares the slot's value at the
// range endpoints and only descends into ranges whose endpoints differ.
// It relies on the paper's observation that proxies essentially never
// downgrade to a previously used logic contract, so each distinct value
// corresponds to one contiguous block range.
//
// The number of archive (getStorageAt) calls is the efficiency metric of
// Section 6.1; read it from the chain's API-call counter.
func (d *Detector) LogicHistory(proxy etypes.Address, slot etypes.Hash) []etypes.Address {
	lower := uint64(0)
	upper := d.chain.CurrentBlock()
	values := make(map[etypes.Hash]struct{})
	vLower := d.chain.GetStorageAt(proxy, slot, lower)
	vUpper := d.chain.GetStorageAt(proxy, slot, upper)
	d.partitionBlocks(proxy, slot, lower, upper, vLower, vUpper, values)
	delete(values, etypes.Hash{}) // the empty slot before the first write
	return sortedAddresses(values)
}

// partitionBlocks is Algorithm 1's PARTITIONBLOCKS: collect every distinct
// value the slot holds in [lower, upper]. Endpoint values are threaded down
// the recursion so each block height is queried at most once — the paper's
// pseudocode re-queries endpoints, which doubles the archive calls for the
// same result.
func (d *Detector) partitionBlocks(proxy etypes.Address, slot etypes.Hash, lower, upper uint64, vLower, vUpper etypes.Hash, values map[etypes.Hash]struct{}) {
	values[vLower] = struct{}{}
	values[vUpper] = struct{}{}
	if vLower == vUpper || lower+1 >= upper {
		return
	}
	mid := lower + (upper-lower)/2
	vMid := d.chain.GetStorageAt(proxy, slot, mid)
	vMid1 := d.chain.GetStorageAt(proxy, slot, mid+1)
	d.partitionBlocks(proxy, slot, lower, mid, vLower, vMid, values)
	d.partitionBlocks(proxy, slot, mid+1, upper, vMid1, vUpper, values)
}

// NaiveLogicHistory is the baseline Algorithm 1 replaces: query the slot at
// every block height from genesis to head. Used by the ablation benchmark
// to quantify the binary search's API-call savings.
func (d *Detector) NaiveLogicHistory(proxy etypes.Address, slot etypes.Hash) []etypes.Address {
	values := make(map[etypes.Hash]struct{})
	// The baseline only ever runs against the in-memory chain (the
	// ablation harness), so the per-block scan skips the Unresolved
	// degradation the production path owes a fallible node.
	head := d.chain.CurrentBlock() // readerpanic:ignore
	for h := uint64(0); h <= head; h++ {
		values[d.chain.GetStorageAt(proxy, slot, h)] = struct{}{} // readerpanic:ignore
	}
	delete(values, etypes.Hash{})
	return sortedAddresses(values)
}

// UpgradeCount returns how many times the proxy switched logic contracts:
// one less than the number of distinct logic addresses (zero upgrades for a
// single logic), for the Figure 6 experiment.
func (d *Detector) UpgradeCount(proxy etypes.Address, slot etypes.Hash) int {
	n := len(d.LogicHistory(proxy, slot))
	if n <= 1 {
		return 0
	}
	return n - 1
}

func sortedAddresses(values map[etypes.Hash]struct{}) []etypes.Address {
	out := make([]etypes.Address, 0, len(values))
	for v := range values {
		out = append(out, etypes.BytesToAddress(v[:]))
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}
