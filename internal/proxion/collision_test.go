package proxion_test

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/proxion"
	"repro/internal/solc"
	"repro/internal/u256"
)

func TestFunctionCollisionsSource(t *testing.T) {
	proxy := &solc.Contract{
		Name: "P",
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "implementation"}, Body: []solc.Stmt{solc.Stop{}}},
			{ABI: abi.Function{Name: "admin"}, Body: []solc.Stmt{solc.Stop{}}},
		},
	}
	logic := &solc.Contract{
		Name: "L",
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "implementation"}, Body: []solc.Stmt{solc.Stop{}}},
			{ABI: abi.Function{Name: "doWork"}, Body: []solc.Stmt{solc.Stop{}}},
		},
	}
	cols := proxion.FunctionCollisionsSource(proxy, logic)
	if len(cols) != 1 {
		t.Fatalf("collisions = %d, want 1", len(cols))
	}
	if cols[0].ProxyProto != "implementation()" || cols[0].LogicProto != "implementation()" {
		t.Errorf("collision = %+v", cols[0])
	}
}

func TestFunctionCollisionsBytecodeIgnoresDecoys(t *testing.T) {
	shared := abi.Function{Name: "claim"}
	mk := func(name string, decoys [][4]byte, extra ...abi.Function) []byte {
		fns := []solc.Func{{ABI: shared, Body: []solc.Stmt{solc.Stop{}}}}
		for _, f := range extra {
			fns = append(fns, solc.Func{ABI: f, Body: []solc.Stmt{solc.Stop{}}})
		}
		return solc.MustCompile(&solc.Contract{Name: name, Funcs: fns, DecoyPush4: decoys})
	}
	// Both contracts embed the same decoy constant: a naive PUSH4 scan
	// would report it as a collision; dispatcher extraction must not.
	decoy := [][4]byte{{0xAA, 0xBB, 0xCC, 0xDD}}
	proxyCode := mk("P", decoy, abi.Function{Name: "adminOnly"})
	logicCode := mk("L", decoy, abi.Function{Name: "withdraw"})

	cols := proxion.FunctionCollisionsBytecode(proxyCode, logicCode)
	if len(cols) != 1 {
		t.Fatalf("collisions = %d, want exactly the shared selector: %+v", len(cols), cols)
	}
	if cols[0].Selector != shared.Selector() {
		t.Errorf("collision selector = %x", cols[0].Selector)
	}
	if cols[0].ProxyProto != "" {
		t.Error("bytecode path cannot know prototypes")
	}
}

func TestFunctionCollisionsMixedSource(t *testing.T) {
	shared := abi.Function{Name: "upgradeTo", Params: []string{"address"}}
	proxySrc := &solc.Contract{
		Name:  "P",
		Funcs: []solc.Func{{ABI: shared, Body: []solc.Stmt{solc.Stop{}}}},
	}
	logic := &solc.Contract{
		Name:  "L",
		Funcs: []solc.Func{{ABI: shared, Body: []solc.Stmt{solc.Stop{}}}},
	}
	proxyCode := solc.MustCompile(proxySrc)
	logicCode := solc.MustCompile(logic)

	// Proxy has source, logic is bytecode-only.
	cols := proxion.FunctionCollisions(proxyCode, logicCode, proxySrc, nil)
	if len(cols) != 1 {
		t.Fatalf("mixed collisions = %d, want 1", len(cols))
	}
	if cols[0].ProxyProto != "upgradeTo(address)" || cols[0].LogicProto != "" {
		t.Errorf("mixed collision = %+v", cols[0])
	}
}

func TestExtractStorageAccessesPackedFields(t *testing.T) {
	contract := &solc.Contract{
		Name: "Packed",
		Vars: []solc.Var{
			{Name: "flag", Type: solc.TypeBool},     // slot 0 off 0 size 1
			{Name: "owner", Type: solc.TypeAddress}, // slot 0 off 1 size 20
			{Name: "total", Type: solc.TypeUint256}, // slot 1 full
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "flag"}, Body: []solc.Stmt{solc.ReturnStorageVar{Var: "flag"}}},
			{ABI: abi.Function{Name: "owner"}, Body: []solc.Stmt{solc.ReturnStorageVar{Var: "owner"}}},
			{ABI: abi.Function{Name: "setTotal", Params: []string{"uint256"}},
				Body: []solc.Stmt{solc.AssignArg{Var: "total", Arg: 0}}},
			{ABI: abi.Function{Name: "setFlag"},
				Body: []solc.Stmt{solc.AssignConst{Var: "flag", Value: u256.One()}}},
			{ABI: abi.Function{Name: "guarded"},
				Body: []solc.Stmt{solc.RequireCallerIs{Var: "owner"}, solc.Stop{}}},
		},
	}
	accs := proxion.ExtractStorageAccesses(solc.MustCompile(contract))

	type key struct {
		slot   uint64
		offset int
		size   int
		kind   proxion.AccessKind
	}
	found := make(map[key]proxion.StorageAccess)
	for _, a := range accs {
		found[key{a.Slot.Word().Uint64(), a.Offset, a.Size, a.Kind}] = a
	}

	// flag read: slot 0 [0,1)
	if _, ok := found[key{0, 0, 1, proxion.AccessRead}]; !ok {
		t.Errorf("flag read not recovered; accesses: %+v", accs)
	}
	// owner read: slot 0 [1,21)
	ownerRead, ok := found[key{0, 1, 20, proxion.AccessRead}]
	if !ok {
		t.Fatalf("owner read not recovered; accesses: %+v", accs)
	}
	// guarded() compares owner against CALLER.
	if !ownerRead.CallerCheck || !ownerRead.Guard {
		t.Errorf("owner read flags = %+v, want CallerCheck+Guard", ownerRead)
	}
	// total write: slot 1 full width, tainted (calldata).
	totalWrite, ok := found[key{1, 0, 32, proxion.AccessWrite}]
	if !ok {
		t.Fatalf("total write not recovered")
	}
	if !totalWrite.Tainted {
		t.Error("calldata-derived write should be tainted")
	}
	// flag packed write: slot 0 [0,1), constant so untainted.
	flagWrite, ok := found[key{0, 0, 1, proxion.AccessWrite}]
	if !ok {
		t.Fatalf("packed flag write not recovered")
	}
	if flagWrite.Tainted {
		t.Error("constant write should not be tainted")
	}
	// The read-modify-write's internal SLOAD must not surface as a
	// full-slot read of slot 0.
	if _, rmwLeak := found[key{0, 0, 32, proxion.AccessRead}]; rmwLeak {
		t.Error("RMW skeleton leaked a full-slot read")
	}
}

func TestStorageCollisionsDetectMismatch(t *testing.T) {
	// Proxy: address at slot 0 [0,20). Logic: two bools at slot 0 [0,1)
	// and [1,2). Overlapping, mismatched: collision.
	proxyAcc := []proxion.StorageAccess{
		{Slot: etypes.Hash{}, Offset: 0, Size: 20, Kind: proxion.AccessRead, CallerCheck: true, Guard: true},
		{Slot: etypes.Hash{}, Offset: 0, Size: 20, Kind: proxion.AccessWrite, Tainted: true},
	}
	logicAcc := []proxion.StorageAccess{
		{Slot: etypes.Hash{}, Offset: 0, Size: 1, Kind: proxion.AccessRead, Guard: true},
		{Slot: etypes.Hash{}, Offset: 1, Size: 1, Kind: proxion.AccessRead, Guard: true},
		{Slot: etypes.Hash{}, Offset: 0, Size: 1, Kind: proxion.AccessWrite},
	}
	cols := proxion.StorageCollisions(proxyAcc, logicAcc)
	if len(cols) != 1 {
		t.Fatalf("collisions = %d, want 1", len(cols))
	}
	if !cols[0].GuardInvolved {
		t.Error("guard involvement not flagged")
	}
	if !cols[0].Exploitable {
		t.Error("guard read overlapped by tainted write should be exploitable")
	}
}

func TestStorageCollisionsIdenticalLayoutClean(t *testing.T) {
	acc := []proxion.StorageAccess{
		{Slot: etypes.Hash{}, Offset: 0, Size: 20, Kind: proxion.AccessRead},
		{Slot: etypes.Hash{}, Offset: 0, Size: 20, Kind: proxion.AccessWrite},
	}
	if cols := proxion.StorageCollisions(acc, acc); len(cols) != 0 {
		t.Errorf("identical layouts reported as colliding: %+v", cols)
	}
}

func TestStorageCollisionsDisjointFieldsClean(t *testing.T) {
	proxyAcc := []proxion.StorageAccess{
		{Slot: etypes.Hash{}, Offset: 0, Size: 1, Kind: proxion.AccessRead},
	}
	logicAcc := []proxion.StorageAccess{
		{Slot: etypes.Hash{}, Offset: 16, Size: 16, Kind: proxion.AccessRead},
	}
	if cols := proxion.StorageCollisions(proxyAcc, logicAcc); len(cols) != 0 {
		t.Errorf("disjoint fields reported as colliding: %+v", cols)
	}
}

// buildAudiusPair deploys the Listing 2 scenario and returns the chain.
func buildAudiusPair(t *testing.T) (*chain.Chain, *solc.Contract, *solc.Contract) {
	t.Helper()
	logic := &solc.Contract{
		Name: "AudiusLogic",
		Vars: []solc.Var{
			{Name: "initialized", Type: solc.TypeBool},
			{Name: "initializing", Type: solc.TypeBool},
		},
		Funcs: []solc.Func{
			{
				ABI: abi.Function{Name: "initialize"},
				Body: []solc.Stmt{
					solc.RequireInitializable{Initialized: "initialized", Initializing: "initializing"},
					solc.AssignConst{Var: "initialized", Value: u256.One()},
					solc.AssignConst{Var: "initializing", Value: u256.Zero()},
					solc.AssignCallerToSlot{Slot: etypes.Hash{}, Offset: 0, Size: 20},
				},
			},
			{ABI: abi.Function{Name: "owner"},
				Body: []solc.Stmt{solc.ReturnSlotField{Slot: etypes.Hash{}, Offset: 0, Size: 20}}},
		},
	}
	slot1 := etypes.HashFromWord(u256.One())
	proxy := &solc.Contract{
		Name: "AudiusProxy",
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "logic", Type: solc.TypeAddress},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "proxyOwner"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "owner"}}},
			{ABI: abi.Function{Name: "upgradeTo", Params: []string{"address"}},
				Body: []solc.Stmt{
					solc.RequireCallerIs{Var: "owner"},
					solc.AssignArg{Var: "logic", Arg: 0},
				}},
		},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: slot1},
	}
	c := chain.New()
	c.InstallContract(logicAt, solc.MustCompile(logic))
	c.InstallContract(proxyAt, solc.MustCompile(proxy))
	c.SetStorageDirect(proxyAt, slot1, etypes.HashFromWord(logicAt.Word()))
	return c, proxy, logic
}

func TestAudiusPairCollisionDetectedAndVerified(t *testing.T) {
	c, _, _ := buildAudiusPair(t)
	d := proxion.NewDetector(c)

	rep := d.Check(proxyAt)
	if !rep.IsProxy {
		t.Fatalf("audius proxy not detected: %+v", rep)
	}
	pa := d.AnalyzePair(proxyAt, rep.Logic, nil)
	if len(pa.Storage) == 0 {
		t.Fatal("storage collision not detected")
	}
	foundExploitable := false
	for _, col := range pa.Storage {
		if col.Slot == (etypes.Hash{}) && col.Exploitable {
			foundExploitable = true
		}
	}
	if !foundExploitable {
		t.Fatalf("slot-0 exploitable collision missing: %+v", pa.Storage)
	}
	if !pa.ExploitVerified {
		t.Error("dynamic replay failed to verify the Audius-style exploit")
	}
}

func TestCorrectInitializerNotVerified(t *testing.T) {
	// Same shape but with matching layouts: the guard works, the replay's
	// second initialize reverts, and nothing is verified.
	logic := &solc.Contract{
		Name: "SafeLogic",
		Vars: []solc.Var{
			{Name: "initialized", Type: solc.TypeBool},
			{Name: "owner", Type: solc.TypeAddress},
		},
		Funcs: []solc.Func{
			{
				ABI: abi.Function{Name: "initialize"},
				Body: []solc.Stmt{
					solc.RequireVarZero{Var: "initialized"},
					solc.AssignConst{Var: "initialized", Value: u256.One()},
					solc.AssignCaller{Var: "owner"},
				},
			},
		},
	}
	slot1 := etypes.HashFromWord(u256.One())
	proxy := &solc.Contract{
		Name: "SafeProxy",
		Vars: []solc.Var{
			{Name: "initialized", Type: solc.TypeBool},
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "logic", Type: solc.TypeAddress},
		},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: slot1},
	}
	c := chain.New()
	c.InstallContract(logicAt, solc.MustCompile(logic))
	c.InstallContract(proxyAt, solc.MustCompile(proxy))
	c.SetStorageDirect(proxyAt, slot1, etypes.HashFromWord(logicAt.Word()))

	d := proxion.NewDetector(c)
	pa := d.AnalyzePair(proxyAt, logicAt, nil)
	if pa.ExploitVerified {
		t.Error("correct initializer verified as exploitable")
	}
}

// mapSource is a test SourceProvider.
type mapSource map[etypes.Address]*solc.Contract

func (m mapSource) Source(a etypes.Address) *solc.Contract { return m[a] }

func TestAnalyzeAllEndToEnd(t *testing.T) {
	c, proxySrc, logicSrc := buildAudiusPair(t)
	// Add a couple of non-proxies for noise.
	plain := &solc.Contract{
		Name: "Plain",
		Funcs: []solc.Func{{
			ABI: abi.Function{Name: "noop"}, Body: []solc.Stmt{solc.Stop{}},
		}},
	}
	c.InstallContract(etypes.MustAddress("0x0000000000000000000000000000000000009301"), solc.MustCompile(plain))

	d := proxion.NewDetector(c)
	res := d.AnalyzeAll(mapSource{proxyAt: proxySrc, logicAt: logicSrc})
	if len(res.Reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(res.Reports))
	}
	proxies := res.Proxies()
	if len(proxies) != 1 || proxies[0].Address != proxyAt {
		t.Fatalf("proxies = %+v", proxies)
	}
	if len(res.Pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(res.Pairs))
	}
	pa := res.Pairs[0]
	if !pa.ProxyHasSource || !pa.LogicHasSource {
		t.Error("source availability not recorded")
	}
	if len(pa.Storage) == 0 || !pa.ExploitVerified {
		t.Errorf("end-to-end pair analysis missed the collision: %+v", pa)
	}
}
