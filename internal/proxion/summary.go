package proxion

import (
	"encoding/json"
	"fmt"

	"repro/internal/pipeline"
)

// Summary aggregates a whole-chain analysis into the headline numbers the
// paper reports (Sections 6–7). Fields are exported and JSON-tagged so the
// CLI can emit machine-readable reports.
type Summary struct {
	Contracts int `json:"contracts"`
	Proxies   int `json:"proxies"`

	// Standards is the Table 4 breakdown.
	Standards map[string]int `json:"standards"`

	// TargetStorage / TargetHardcoded split upgradeable proxies from clones.
	TargetStorage   int `json:"target_storage"`
	TargetHardcoded int `json:"target_hardcoded"`

	// EmulationErrors counts terminal EVM failures (Section 7.1).
	EmulationErrors int `json:"emulation_errors"`

	// Unresolved counts contracts whose chain reads terminally failed under
	// a fallible node; they stay in Contracts but carry no full verdict.
	// Retry and breaker activity behind them is in Pipeline (read_retries,
	// breaker_trips).
	Unresolved int `json:"unresolved"`

	// PairsWithFunctionCollisions / PairsWithStorageCollisions /
	// VerifiedExploits summarize Section 5's output.
	PairsWithFunctionCollisions int `json:"pairs_with_function_collisions"`
	PairsWithStorageCollisions  int `json:"pairs_with_storage_collisions"`
	VerifiedExploits            int `json:"verified_exploits"`

	// Pipeline is the engine instrumentation of the run that produced the
	// Result: throughput, dedup-cache hit rate, emulation aborts,
	// getStorageAt call count and per-stage worker utilization.
	Pipeline *pipeline.Snapshot `json:"pipeline,omitempty"`
}

// SummaryBuilder folds analysis items into a Summary incrementally — the
// streaming replacement for materializing a Result first. It implements
// ReportSink, so it can be handed to AnalyzeStream directly; its state is
// a fixed handful of counters, independent of corpus size, and builders
// from partitioned runs combine with Merge.
type SummaryBuilder struct {
	s Summary
}

// NewSummaryBuilder returns an empty builder.
func NewSummaryBuilder() *SummaryBuilder {
	return &SummaryBuilder{s: Summary{Standards: make(map[string]int)}}
}

// Emit implements ReportSink: one finalized item folds into the counters.
func (b *SummaryBuilder) Emit(it Item) {
	b.observeReport(it.Report)
	if it.Pair != nil {
		b.observePair(*it.Pair)
	}
}

func (b *SummaryBuilder) observeReport(rep Report) {
	b.s.Contracts++
	if rep.EmulationErr != nil {
		b.s.EmulationErrors++
	}
	if rep.Unresolved {
		b.s.Unresolved++
	}
	if !rep.IsProxy {
		return
	}
	b.s.Proxies++
	b.s.Standards[rep.Standard.String()]++
	switch rep.Target {
	case TargetStorage:
		b.s.TargetStorage++
	case TargetHardcoded:
		b.s.TargetHardcoded++
	}
}

func (b *SummaryBuilder) observePair(pa PairAnalysis) {
	if len(pa.Functions) > 0 {
		b.s.PairsWithFunctionCollisions++
	}
	if len(pa.Storage) > 0 {
		b.s.PairsWithStorageCollisions++
	}
	if pa.ExploitVerified {
		b.s.VerifiedExploits++
	}
}

// Merge folds another builder's counts into this one. Builders observing
// disjoint partitions of a corpus merge into the same summary a single
// pass would produce.
func (b *SummaryBuilder) Merge(o *SummaryBuilder) {
	b.s.Contracts += o.s.Contracts
	b.s.Proxies += o.s.Proxies
	for k, v := range o.s.Standards {
		b.s.Standards[k] += v
	}
	b.s.TargetStorage += o.s.TargetStorage
	b.s.TargetHardcoded += o.s.TargetHardcoded
	b.s.EmulationErrors += o.s.EmulationErrors
	b.s.Unresolved += o.s.Unresolved
	b.s.PairsWithFunctionCollisions += o.s.PairsWithFunctionCollisions
	b.s.PairsWithStorageCollisions += o.s.PairsWithStorageCollisions
	b.s.VerifiedExploits += o.s.VerifiedExploits
}

// Summary returns the aggregate, attaching the run's pipeline snapshot
// (nil is fine).
func (b *SummaryBuilder) Summary(snap *pipeline.Snapshot) Summary {
	s := b.s
	s.Pipeline = snap
	return s
}

// Summarize folds a Result into a Summary — the batch wrapper over the
// incremental builder.
func Summarize(res *Result) Summary {
	b := NewSummaryBuilder()
	for _, rep := range res.Reports {
		b.observeReport(rep)
	}
	for _, pa := range res.Pairs {
		b.observePair(pa)
	}
	return b.Summary(res.Stats)
}

// ProxyShare returns the proxy fraction of the analyzed population.
func (s Summary) ProxyShare() float64 {
	if s.Contracts == 0 {
		return 0
	}
	return float64(s.Proxies) / float64(s.Contracts)
}

// MarshalIndentJSON renders the summary for the CLI's -json flag.
func (s Summary) MarshalIndentJSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("proxion: marshaling summary: %w", err)
	}
	return out, nil
}
