package proxion

import (
	"encoding/json"
	"fmt"

	"repro/internal/pipeline"
)

// Summary aggregates a whole-chain analysis into the headline numbers the
// paper reports (Sections 6–7). Fields are exported and JSON-tagged so the
// CLI can emit machine-readable reports.
type Summary struct {
	Contracts int `json:"contracts"`
	Proxies   int `json:"proxies"`

	// Standards is the Table 4 breakdown.
	Standards map[string]int `json:"standards"`

	// TargetStorage / TargetHardcoded split upgradeable proxies from clones.
	TargetStorage   int `json:"target_storage"`
	TargetHardcoded int `json:"target_hardcoded"`

	// EmulationErrors counts terminal EVM failures (Section 7.1).
	EmulationErrors int `json:"emulation_errors"`

	// Unresolved counts contracts whose chain reads terminally failed under
	// a fallible node; they stay in Contracts but carry no full verdict.
	// Retry and breaker activity behind them is in Pipeline (read_retries,
	// breaker_trips).
	Unresolved int `json:"unresolved"`

	// PairsWithFunctionCollisions / PairsWithStorageCollisions /
	// VerifiedExploits summarize Section 5's output.
	PairsWithFunctionCollisions int `json:"pairs_with_function_collisions"`
	PairsWithStorageCollisions  int `json:"pairs_with_storage_collisions"`
	VerifiedExploits            int `json:"verified_exploits"`

	// Pipeline is the engine instrumentation of the run that produced the
	// Result: throughput, dedup-cache hit rate, emulation aborts,
	// getStorageAt call count and per-stage worker utilization.
	Pipeline *pipeline.Snapshot `json:"pipeline,omitempty"`
}

// Summarize folds a Result into a Summary.
func Summarize(res *Result) Summary {
	s := Summary{
		Contracts: len(res.Reports),
		Standards: make(map[string]int),
		Pipeline:  res.Stats,
	}
	for _, rep := range res.Reports {
		if rep.EmulationErr != nil {
			s.EmulationErrors++
		}
		if rep.Unresolved {
			s.Unresolved++
		}
		if !rep.IsProxy {
			continue
		}
		s.Proxies++
		s.Standards[rep.Standard.String()]++
		switch rep.Target {
		case TargetStorage:
			s.TargetStorage++
		case TargetHardcoded:
			s.TargetHardcoded++
		}
	}
	for _, pa := range res.Pairs {
		if len(pa.Functions) > 0 {
			s.PairsWithFunctionCollisions++
		}
		if len(pa.Storage) > 0 {
			s.PairsWithStorageCollisions++
		}
		if pa.ExploitVerified {
			s.VerifiedExploits++
		}
	}
	return s
}

// ProxyShare returns the proxy fraction of the analyzed population.
func (s Summary) ProxyShare() float64 {
	if s.Contracts == 0 {
		return 0
	}
	return float64(s.Proxies) / float64(s.Contracts)
}

// MarshalIndentJSON renders the summary for the CLI's -json flag.
func (s Summary) MarshalIndentJSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("proxion: marshaling summary: %w", err)
	}
	return out, nil
}
