// Package proxion implements the paper's contribution: an automated
// cross-contract analyzer that identifies proxy smart contracts — including
// hidden ones without source code or past transactions — locates their
// logic contracts across blockchain history, and detects function and
// storage collisions between proxy/logic pairs.
//
// Detection is the two-step pipeline of Section 4: a cheap disassembly
// filter rejects contracts without a DELEGATECALL opcode, then EVM emulation
// with carefully crafted call data checks whether the fallback actually
// forwards the received call data through a delegate call.
package proxion

import (
	"bytes"
	"encoding/binary"

	"repro/internal/chain"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/keccak"
	"repro/internal/u256"
)

// TargetSource says where a proxy keeps its logic contract's address.
type TargetSource int

// Target sources.
const (
	TargetUnknown TargetSource = iota
	// TargetHardcoded means the address is fixed in the bytecode
	// (minimal/clone proxies).
	TargetHardcoded
	// TargetStorage means the address is read from a storage slot
	// (upgradeable proxies).
	TargetStorage
)

// String returns a short human-readable name.
func (t TargetSource) String() string {
	switch t {
	case TargetHardcoded:
		return "hardcoded"
	case TargetStorage:
		return "storage"
	default:
		return "unknown"
	}
}

// Standard is the recognized proxy design standard (Table 4).
type Standard int

// Proxy standards, per the paper's Table 4 categories.
const (
	StandardNone Standard = iota
	StandardEIP1167
	StandardEIP1822
	StandardEIP1967
	StandardOther
)

// String returns the standard's conventional name.
func (s Standard) String() string {
	switch s {
	case StandardEIP1167:
		return "EIP-1167"
	case StandardEIP1822:
		return "EIP-1822"
	case StandardEIP1967:
		return "EIP-1967"
	case StandardOther:
		return "Others"
	case StandardEIP2535:
		return "EIP-2535"
	default:
		return "none"
	}
}

// Well-known implementation slots.
var (
	// SlotEIP1967 = keccak256("eip1967.proxy.implementation") - 1.
	SlotEIP1967 = etypes.HashFromWord(
		u256.FromBytes32(keccak.Sum256([]byte("eip1967.proxy.implementation"))).Sub(u256.One()))
	// SlotEIP1822 = keccak256("PROXIABLE").
	SlotEIP1822 = etypes.Keccak([]byte("PROXIABLE"))
	// SlotEIP1967Beacon = keccak256("eip1967.proxy.beacon") - 1: where a
	// beacon proxy keeps the beacon address. The implementation itself
	// lives in the beacon's storage, so the proxy's own slots never change
	// across upgrades.
	SlotEIP1967Beacon = etypes.HashFromWord(
		u256.FromBytes32(keccak.Sum256([]byte("eip1967.proxy.beacon"))).Sub(u256.One()))
)

// Report is the outcome of checking one contract.
type Report struct {
	Address etypes.Address
	// IsProxy is the paper's definition: the fallback forwards received
	// call data to another contract via DELEGATECALL.
	IsProxy bool
	// Logic is the current logic contract (when IsProxy).
	Logic etypes.Address
	// Target says whether the logic address is hard-coded or in storage.
	Target TargetSource
	// ImplSlot is the storage slot holding the logic address (when
	// Target == TargetStorage).
	ImplSlot etypes.Hash
	// Standard classifies the proxy design (Table 4).
	Standard Standard
	// HasDelegateCall is the step-1 disassembly filter result.
	HasDelegateCall bool
	// EmulationErr is the terminal EVM error, if emulation failed before a
	// verdict (the paper's ~1.2–4.9% runtime-error cases).
	EmulationErr error
	// Unresolved marks a contract whose chain reads terminally failed (the
	// resilient client exhausted its retry budget or the circuit breaker
	// rejected the read). The contract stays in every total but its verdict
	// — or, when set after detection succeeded, its collision/history
	// analysis — could not be computed; ResolveErr carries the failure.
	Unresolved bool
	// ResolveErr is the terminal read failure behind Unresolved.
	ResolveErr error
	// Reason is a one-line human-readable justification of the verdict.
	Reason string
}

// unresolvedReport is the graceful-degradation outcome for a contract whose
// reads exhausted the resilient client's retry budget.
func unresolvedReport(addr etypes.Address, re *chain.ReadError) Report {
	return Report{
		Address:    addr,
		Unresolved: true,
		ResolveErr: re,
		Reason:     "unresolved: " + re.Error(),
	}
}

// markUnresolved degrades an already-computed report whose downstream
// analysis (pair collisions, history recovery) terminally failed.
func markUnresolved(rep *Report, re *chain.ReadError) {
	rep.Unresolved = true
	if rep.ResolveErr == nil {
		rep.ResolveErr = re
	}
}

// Detector runs the Proxion pipeline against a chain snapshot, reached
// through the chain.Reader node surface: the in-memory chain directly, or
// the faultchain resilient client when the node can fail.
type Detector struct {
	chain chain.Reader
	// emulationGas bounds each emulation run.
	emulationGas uint64
	// selCache memoizes dispatcher-selector extraction by bytecode hash,
	// exploiting the heavy duplication of deployed contracts (Figure 5).
	selCache *selectorCache
	// accessCache memoizes storage-access extraction by bytecode hash.
	accessCache *accessCache
	// viewCache memoizes per-bytecode selector views for pair analysis.
	viewCache *viewCache
	// verdicts memoizes the emulation verdict per unique runtime bytecode
	// — the streaming engine's biggest throughput lever, since 98.7% of
	// deployed contracts are duplicates (Table 3 / Figure 5).
	verdicts *verdictCache
	// structural is the second-level verdict key: near-clone families by
	// static fingerprint, promoted without emulation (structural.go).
	structural *structuralIndex
	// structuralOff disables structural promotion (exact-hash dedup only).
	structuralOff bool
}

// NewDetector creates a detector over the given node surface.
func NewDetector(c chain.Reader) *Detector {
	return &Detector{
		chain:        c,
		emulationGas: 5_000_000,
		selCache:     newSelectorCache(),
		accessCache:  newAccessCache(),
		viewCache:    newViewCache(),
		verdicts:     newVerdictCache(),
		structural:   newStructuralIndex(),
	}
}

// Chain returns the node surface under analysis.
func (d *Detector) Chain() chain.Reader { return d.chain }

// emulationContext builds the block environment for emulation runs: the
// latest block's values, per Section 4.2 ("all alive contracts are supposed
// to be executable at any block's numbers"), with the chain id taken from
// the network under analysis so the same detector works on any EVM chain
// (Section 8.2).
func (d *Detector) emulationContext() evm.BlockContext {
	ctx := evm.DefaultBlockContext()
	head := d.chain.LatestHeader()
	ctx.Number = head.Number
	ctx.Time = head.Time
	ctx.ChainID = u256.FromUint64(d.chain.Config().ChainID)
	ctx.BlockHash = func(n uint64) etypes.Hash {
		h, err := d.chain.HeaderByNumber(n)
		if err != nil {
			return etypes.Hash{}
		}
		return h.Hash
	}
	return ctx
}

// CraftCallData builds call data whose 4-byte selector differs from every
// PUSH4 immediate in the code (Section 4.2): since compilers emit function
// signatures after PUSH4 opcodes, avoiding all PUSH4 values guarantees the
// crafted selector matches no function and execution reaches the fallback.
// The remainder is a recognizable 32-byte probe payload so forwarding can
// be verified byte-for-byte.
func CraftCallData(addr etypes.Address, code []byte) []byte {
	avoid := make(map[[4]byte]struct{})
	for _, sel := range disasm.Push4Candidates(code) {
		avoid[sel] = struct{}{}
	}
	var sel [4]byte
	for try := 0; ; try++ {
		seed := make([]byte, 0, 28)
		seed = append(seed, addr[:]...)
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(try))
		seed = append(seed, n[:]...)
		h := keccak.Sum256(seed)
		copy(sel[:], h[:4])
		if _, clash := avoid[sel]; !clash {
			break
		}
	}
	payload := keccak.Sum256(append([]byte("proxion-probe"), addr[:]...))
	out := make([]byte, 0, 4+32)
	out = append(out, sel[:]...)
	out = append(out, payload[:]...)
	return out
}

// emulationTracer watches for a DELEGATECALL initiated by the contract
// under test that forwards the probe call data.
type emulationTracer struct {
	under etypes.Address
	probe []byte
	state evm.StateDB

	// sloadedValues maps observed SLOAD results back to the slot they came
	// from — how the detector learns the implementation slot.
	sloadedValues map[u256.Int]etypes.Hash

	// readSlots records, in first-read order, every storage slot loaded in
	// the contract's own context before the probe was forwarded. The
	// verdict of an emulation can only depend on the contract's per-address
	// state through these slots, which is what lets the bytecode-dedup
	// cache transfer verdicts between identical contracts safely.
	readSlots []etypes.Hash
	readSeen  map[etypes.Hash]struct{}

	forwarded bool
	logic     etypes.Address
	fromSlot  etypes.Hash
	slotKnown bool
}

var _ evm.Tracer = (*emulationTracer)(nil)

func (t *emulationTracer) CaptureStep(f *evm.Frame, pc uint64, op evm.Op) {
	if op != evm.SLOAD || f.Address() != t.under {
		return
	}
	key := etypes.HashFromWord(f.Stack().Peek(0))
	if !t.forwarded {
		if t.readSeen == nil {
			t.readSeen = make(map[etypes.Hash]struct{})
		}
		if _, dup := t.readSeen[key]; !dup {
			t.readSeen[key] = struct{}{}
			t.readSlots = append(t.readSlots, key)
		}
	}
	val := t.state.GetState(t.under, key).Word()
	if t.sloadedValues == nil {
		t.sloadedValues = make(map[u256.Int]etypes.Hash)
	}
	t.sloadedValues[val] = key
}

func (t *emulationTracer) CaptureEnter(kind evm.CallKind, from, to etypes.Address, input []byte, _ u256.Int) {
	if t.forwarded || kind != evm.CallKindDelegateCall || from != t.under {
		return
	}
	// The paper's proxy definition: the *received* call data is forwarded.
	if !bytes.Equal(input, t.probe) {
		return
	}
	t.forwarded = true
	t.logic = to
	if slot, ok := t.sloadedValues[to.Word()]; ok {
		t.fromSlot = slot
		t.slotKnown = true
	}
}

func (t *emulationTracer) CaptureExit([]byte, error) {}

// probeSender is the synthetic externally owned account emulation calls from.
var probeSender = etypes.MustAddress("0x00000000000000000000000000000000c0ffee00")

// Check runs the full two-step pipeline on one contract. When the chain
// reader is a resilient client, a terminal read failure degrades to an
// Unresolved report instead of propagating (the Reader error contract).
func (d *Detector) Check(addr etypes.Address) Report {
	var rep Report
	if re := chain.CaptureReadError(func() { rep = d.check(addr) }); re != nil {
		return unresolvedReport(addr, re)
	}
	return rep
}

func (d *Detector) check(addr etypes.Address) Report {
	code := d.chain.Code(addr)
	if len(code) == 0 {
		return Report{Address: addr, Reason: "no code at address"}
	}
	return d.checkWithCallData(addr, CraftCallData(addr, code))
}

// CheckWithCallData runs the pipeline with caller-supplied probe call data.
// Production detection always uses CraftCallData; the selector-choice
// ablation passes deliberately colliding call data to quantify how much the
// PUSH4-avoidance matters.
func (d *Detector) CheckWithCallData(addr etypes.Address, probe []byte) Report {
	var rep Report
	if re := chain.CaptureReadError(func() { rep = d.checkWithCallData(addr, probe) }); re != nil {
		return unresolvedReport(addr, re)
	}
	return rep
}

func (d *Detector) checkWithCallData(addr etypes.Address, probe []byte) Report {
	code := d.chain.Code(addr)
	if len(code) == 0 {
		return Report{Address: addr, Reason: "no code at address"}
	}

	// Step 1 (Section 4.1): contracts without a DELEGATECALL opcode are
	// not proxies; skip emulation entirely.
	if !disasm.ContainsOp(code, evm.DELEGATECALL) {
		return Report{Address: addr, Reason: "bytecode contains no DELEGATECALL opcode"}
	}

	// Step 2 (Section 4.2): emulate with the probe call data and observe
	// whether it is forwarded through a DELEGATECALL.
	rep := d.emulateProbe(addr, code, probe).rep
	if rep.IsProxy {
		rep.Standard = classify(code, rep)
	}
	return rep
}

// probeOutcome is the raw result of one emulation probe, before standard
// classification: the would-be report plus the storage slots the fallback
// read before forwarding — the guard set the bytecode-dedup cache
// fingerprints per-address state with.
type probeOutcome struct {
	rep        Report
	guardSlots []etypes.Hash
}

// emulateProbe performs the Section 4.2 emulation step on a contract whose
// code already passed the disassembly filter. The returned report carries
// no Standard; classification is a separate (cached) pipeline stage.
func (d *Detector) emulateProbe(addr etypes.Address, code, probe []byte) probeOutcome {
	rep := Report{Address: addr, HasDelegateCall: true}
	overlay := newOverlay(d.chain)
	tracer := &emulationTracer{under: addr, probe: probe, state: overlay}
	e := evm.New(overlay, evm.Config{
		Block:     d.emulationContext(),
		Tx:        evm.TxContext{Origin: probeSender},
		Tracer:    tracer,
		Lenient:   true,
		StepLimit: 1 << 18,
	})
	res := e.Call(probeSender, addr, probe, d.emulationGas, u256.Zero())

	if !tracer.forwarded {
		// A revert bubbled from a logic contract is normal; any terminal
		// error without observed forwarding means "not a proxy", with the
		// error kept for the runtime-error statistics.
		if res.Err != nil && res.Err != evm.ErrRevert {
			rep.EmulationErr = res.Err
			rep.Reason = "emulation aborted: " + res.Err.Error()
		} else {
			rep.Reason = "emulation completed without forwarding the probe call data"
		}
		return probeOutcome{rep: rep, guardSlots: tracer.readSlots}
	}

	rep.IsProxy = true
	rep.Logic = tracer.logic
	rep.Reason = "fallback forwarded the probe call data via DELEGATECALL to " + tracer.logic.Hex()

	// Locate the logic address (Section 4.3): storage slot if we saw it
	// come from an SLOAD, otherwise hard-coded in the bytecode.
	switch {
	case tracer.slotKnown:
		rep.Target = TargetStorage
		rep.ImplSlot = tracer.fromSlot
	default:
		rep.Target = TargetHardcoded
	}

	// The implementation slot itself is excluded from the guard set: its
	// value is exactly what duplicates legitimately differ in, and the
	// cache re-resolves it per address.
	guard := tracer.readSlots
	if rep.Target == TargetStorage {
		guard = nil
		for _, s := range tracer.readSlots {
			if s != rep.ImplSlot {
				guard = append(guard, s)
			}
		}
	}
	return probeOutcome{rep: rep, guardSlots: guard}
}

// classify maps a proxy report onto the design standards of Table 4.
func classify(code []byte, rep Report) Standard {
	if _, ok := disasm.MinimalProxyTarget(code); ok {
		return StandardEIP1167
	}
	if rep.Target == TargetStorage {
		switch rep.ImplSlot {
		case SlotEIP1822:
			return StandardEIP1822
		case SlotEIP1967:
			return StandardEIP1967
		}
	}
	return StandardOther
}
