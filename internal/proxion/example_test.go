package proxion_test

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/proxion"
	"repro/internal/solc"
	"repro/internal/u256"
)

// ExampleDetector_Check shows the two-step detection on a minimal (EIP-1167)
// proxy: no source code, no transactions — pure bytecode analysis.
func ExampleDetector_Check() {
	c := chain.New()
	logic := etypes.MustAddress("0x00000000000000000000000000000000000000fe")
	clone := etypes.MustAddress("0x00000000000000000000000000000000000000ff")
	c.InstallContract(logic, []byte{0x00}) // STOP
	c.InstallContract(clone, disasm.MinimalProxyRuntime(logic))

	rep := proxion.NewDetector(c).Check(clone)
	fmt.Println("proxy:", rep.IsProxy)
	fmt.Println("standard:", rep.Standard)
	fmt.Println("logic:", rep.Logic)
	// Output:
	// proxy: true
	// standard: EIP-1167
	// logic: 0x00000000000000000000000000000000000000fe
}

// ExampleFunctionCollisionsBytecode detects the paper's Listing 1 honeypot
// collision from bytecode alone: two differently named functions with the
// same Keccak selector.
func ExampleFunctionCollisionsBytecode() {
	proxyCode := solc.MustCompile(&solc.Contract{
		Name: "Trap",
		Funcs: []solc.Func{{
			ABI:  abi.Function{Name: "impl_LUsXCWD2AKCc"},
			Body: []solc.Stmt{solc.Stop{}},
		}},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage},
	})
	logicCode := solc.MustCompile(&solc.Contract{
		Name: "Lure",
		Funcs: []solc.Func{{
			ABI:  abi.Function{Name: "free_ether_withdrawal"},
			Body: []solc.Stmt{solc.Stop{}},
		}},
	})
	for _, col := range proxion.FunctionCollisionsBytecode(proxyCode, logicCode) {
		fmt.Printf("collision at selector 0x%x\n", col.Selector)
	}
	// Output:
	// collision at selector 0xdf4a3106
}

// ExampleDetector_LogicHistory recovers a proxy's upgrade history with
// Algorithm 1's binary search over the archive.
func ExampleDetector_LogicHistory() {
	c := chain.New()
	slot := etypes.HashFromWord(u256.One())
	proxy := etypes.MustAddress("0x00000000000000000000000000000000000000aa")
	c.InstallContract(proxy, solc.MustCompile(&solc.Contract{
		Name:     "P",
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: slot},
	}))
	v1 := etypes.MustAddress("0x00000000000000000000000000000000000000a1")
	v2 := etypes.MustAddress("0x00000000000000000000000000000000000000a2")
	c.AdvanceTo(1_000)
	c.SetStorageDirect(proxy, slot, etypes.HashFromWord(v1.Word()))
	c.AdvanceTo(900_000)
	c.SetStorageDirect(proxy, slot, etypes.HashFromWord(v2.Word()))
	c.AdvanceTo(1_500_000)

	det := proxion.NewDetector(c)
	c.ResetAPICalls()
	history := det.LogicHistory(proxy, slot)
	fmt.Println("versions:", len(history))
	fmt.Println("cheap:", c.APICalls() < 200) // vs 1.5M for a naive scan
	// Output:
	// versions: 2
	// cheap: true
}
