package proxion_test

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/etypes"
	"repro/internal/proxion"
)

// TestAnalyzeStreamMatchesBatch: the streaming entry point with a
// collecting sink must reproduce AnalyzeAll exactly — same reports, same
// order, same pairs — across window sizes small enough to force heavy
// reorder-buffer churn.
func TestAnalyzeStreamMatchesBatch(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 7, Contracts: 400})
	want := proxion.NewDetector(pop.Chain).AnalyzeAll(pop.Registry)
	want.Stats = nil

	for _, window := range []int{1, 3, 64, 4096} {
		sink := proxion.NewCollectSink()
		d := proxion.NewDetector(pop.Chain)
		d.AnalyzeStream(proxion.SliceSource(pop.Chain.Contracts()), pop.Registry, sink,
			proxion.AnalyzeOptions{Window: window})
		got := sink.Result()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("window %d: streamed result diverges from AnalyzeAll", window)
		}
	}
}

// TestAnalyzeStreamEmitsInSourceOrder: items must reach the sink in
// strictly increasing index order even with a tiny reorder window and a
// wide worker pool racing completions.
func TestAnalyzeStreamEmitsInSourceOrder(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 13, Contracts: 500})
	next := 0
	sink := proxion.SinkFunc(func(it proxion.Item) {
		if it.Index != next {
			t.Errorf("emitted index %d, want %d", it.Index, next)
		}
		next++
	})
	proxion.NewDetector(pop.Chain).AnalyzeStream(
		proxion.SliceSource(pop.Chain.Contracts()), pop.Registry, sink,
		proxion.AnalyzeOptions{Window: 4, ProbeWorkers: 8, PairWorkers: 8})
	if want := len(pop.Chain.Contracts()); next != want {
		t.Fatalf("emitted %d items, want %d", next, want)
	}
}

// TestAnalyzeStreamWindowBoundsInFlight is the backpressure contract: the
// number of addresses pulled from the source but not yet emitted to the
// sink never exceeds the window (+1 for the address the feeder holds
// while waiting on a slot). A deliberately slow sink forces the pipeline
// to run window-limited the whole time.
func TestAnalyzeStreamWindowBoundsInFlight(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 5, Contracts: 300})
	addrs := pop.Chain.Contracts()
	const window = 8

	var pulled, emitted atomic.Int64
	i := 0
	src := proxion.SourceFunc(func() (etypes.Address, bool) {
		if i >= len(addrs) {
			return etypes.Address{}, false
		}
		a := addrs[i]
		i++
		pulled.Add(1)
		return a, true
	})
	maxInFlight := int64(0)
	sink := proxion.SinkFunc(func(proxion.Item) {
		if f := pulled.Load() - emitted.Load(); f > maxInFlight {
			maxInFlight = f
		}
		if emitted.Load()%50 == 0 {
			time.Sleep(2 * time.Millisecond) // let upstream run ahead if it can
		}
		emitted.Add(1)
	})

	proxion.NewDetector(pop.Chain).AnalyzeStream(src, pop.Registry, sink,
		proxion.AnalyzeOptions{Window: window})
	if emitted.Load() != int64(len(addrs)) {
		t.Fatalf("emitted %d, want %d", emitted.Load(), len(addrs))
	}
	if maxInFlight > window+1 {
		t.Fatalf("in-flight reached %d, window bound is %d", maxInFlight, window+1)
	}
}

// TestAnalyzeStreamBoundedCacheSameVerdicts: capping the verdict cache
// changes hit/miss accounting, never analysis output. A capacity far
// below the landscape's unique-bytecode count must still yield the exact
// batch result.
func TestAnalyzeStreamBoundedCacheSameVerdicts(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 29, Contracts: 500})
	want := proxion.NewDetector(pop.Chain).AnalyzeAll(pop.Registry)
	want.Stats = nil

	d := proxion.NewDetector(pop.Chain)
	got := d.AnalyzeAllWithOptions(pop.Registry, proxion.AnalyzeOptions{CacheCapacity: 2})
	scanned := got.Stats.Contracts
	hits, emuls := got.Stats.CacheHits, got.Stats.Emulations
	got.Stats = nil
	if !reflect.DeepEqual(got, want) {
		t.Fatal("bounded verdict cache changed analysis output")
	}
	if scanned != int64(len(want.Reports)) {
		t.Fatalf("scanned %d, want %d", scanned, len(want.Reports))
	}
	// Accounting stays complete even as eviction shifts the hit/miss split.
	probed := hits + emuls
	wantProbed := int64(0)
	for _, rep := range want.Reports {
		if rep.HasDelegateCall || rep.IsProxy {
			wantProbed++
		}
	}
	if probed < wantProbed {
		t.Fatalf("hits+emulations = %d, fewer than %d probed contracts", probed, wantProbed)
	}
}

// TestAnalyzeStreamWithHistory checks fan-out refcounting on the widest
// item shape: with the history stage on, each proxy item must arrive with
// both its pair and its history attached, and non-proxies with neither.
func TestAnalyzeStreamWithHistory(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 17, Contracts: 300})
	want := proxion.NewDetector(pop.Chain).
		AnalyzeAllWithOptions(pop.Registry, proxion.AnalyzeOptions{WithHistory: true})
	want.Stats = nil

	sink := proxion.NewCollectSink()
	var items []proxion.Item
	tee := proxion.SinkFunc(func(it proxion.Item) {
		items = append(items, it)
		sink.Emit(it)
	})
	proxion.NewDetector(pop.Chain).AnalyzeStream(
		proxion.SliceSource(pop.Chain.Contracts()), pop.Registry, tee,
		proxion.AnalyzeOptions{WithHistory: true, Window: 16})
	got := sink.Result()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("streamed with-history result diverges from batch")
	}
	for _, it := range items {
		analyzed := it.Report.IsProxy && !it.Report.Logic.IsZero() && !it.Report.Unresolved
		if analyzed && (it.Pair == nil || it.History == nil) {
			t.Fatalf("proxy item %d emitted incomplete: pair=%v history=%v",
				it.Index, it.Pair != nil, it.History != nil)
		}
		if !it.Report.IsProxy && (it.Pair != nil || it.History != nil) {
			t.Fatalf("non-proxy item %d carries sub-analyses", it.Index)
		}
	}
}

// TestAnalyzeStreamEmptySource: a source that is empty from the first
// pull completes cleanly with zero emissions.
func TestAnalyzeStreamEmptySource(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 1, Contracts: 20})
	count := 0
	snap := proxion.NewDetector(pop.Chain).AnalyzeStream(
		proxion.SliceSource(nil), pop.Registry,
		proxion.SinkFunc(func(proxion.Item) { count++ }),
		proxion.AnalyzeOptions{})
	if count != 0 || snap.Contracts != 0 {
		t.Fatalf("empty source: emitted=%d scanned=%d, want 0/0", count, snap.Contracts)
	}
}
