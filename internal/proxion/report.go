package proxion

import (
	"sync"

	"repro/internal/etypes"
	"repro/internal/pipeline"
	"repro/internal/solc"
)

// accessCache memoizes ExtractStorageAccesses by bytecode hash.
type accessCache struct {
	mu sync.Mutex
	m  map[etypes.Hash][]StorageAccess
}

func newAccessCache() *accessCache {
	return &accessCache{m: make(map[etypes.Hash][]StorageAccess)}
}

func (c *accessCache) get(code []byte) []StorageAccess {
	return c.getByHash(etypes.Keccak(code), code)
}

// getByHash is get with the bytecode hash already computed, so callers that
// key several caches can pay for the keccak once.
func (c *accessCache) getByHash(h etypes.Hash, code []byte) []StorageAccess {
	c.mu.Lock()
	cached, ok := c.m[h]
	c.mu.Unlock()
	if ok {
		return cached
	}
	accs := ExtractStorageAccesses(code)
	c.mu.Lock()
	c.m[h] = accs
	c.mu.Unlock()
	return accs
}

// SourceProvider resolves a contract's verified source, if published. The
// etherscan package implements it; nil results mean bytecode-only analysis.
type SourceProvider interface {
	Source(addr etypes.Address) *solc.Contract
}

// PairAnalysis is the full collision assessment of one proxy/logic pair
// (Section 5).
type PairAnalysis struct {
	Proxy etypes.Address
	Logic etypes.Address
	// ProxyHasSource/LogicHasSource record which analysis path ran.
	ProxyHasSource bool
	LogicHasSource bool
	Functions      []FunctionCollision
	Storage        []StorageCollision
	// ExploitVerified is set when the dynamic replay confirmed a storage
	// collision exploit.
	ExploitVerified bool
}

// AnalyzePair detects function and storage collisions for one proxy/logic
// pair, choosing source- or bytecode-level techniques per availability.
func (d *Detector) AnalyzePair(proxy, logic etypes.Address, sources SourceProvider) PairAnalysis {
	pa := PairAnalysis{Proxy: proxy, Logic: logic}
	proxyCode := d.chain.Code(proxy)
	logicCode := d.chain.Code(logic)

	var proxySrc, logicSrc *solc.Contract
	if sources != nil {
		proxySrc = sources.Source(proxy)
		logicSrc = sources.Source(logic)
	}
	pa.ProxyHasSource = proxySrc != nil
	pa.LogicHasSource = logicSrc != nil

	// The chain's cached code hashes key every per-code memo below.
	proxyHash := d.chain.CodeHash(proxy)
	logicHash := d.chain.CodeHash(logic)

	pa.Functions = d.functionCollisions(proxyHash, logicHash, proxyCode, logicCode, proxySrc, logicSrc)

	proxyAcc := d.accessCache.getByHash(proxyHash, proxyCode)
	logicAcc := d.accessCache.getByHash(logicHash, logicCode)
	pa.Storage = StorageCollisions(proxyAcc, logicAcc)
	if len(pa.Storage) > 0 {
		pa.ExploitVerified = d.VerifyStorageExploit(proxy, logic, pa.Storage)
		if pa.ExploitVerified {
			for i := range pa.Storage {
				if pa.Storage[i].Exploitable {
					pa.Storage[i].Verified = true
				}
			}
		}
	}
	return pa
}

// Result is the output of a whole-chain analysis run.
type Result struct {
	// Reports holds one detection report per examined contract, in the
	// chain's deterministic contract order.
	Reports []Report
	// Pairs holds the collision analysis of every detected proxy with its
	// current logic contract.
	Pairs []PairAnalysis
	// Histories holds the recovered logic-history analyses, only when the
	// run enabled AnalyzeOptions.WithHistory.
	Histories []HistoricalAnalysis
	// Stats is the pipeline instrumentation snapshot of the run.
	Stats *pipeline.Snapshot
}

// Proxies returns the subset of reports that detected a proxy.
func (r *Result) Proxies() []Report {
	var out []Report
	for _, rep := range r.Reports {
		if rep.IsProxy {
			out = append(out, rep)
		}
	}
	return out
}
