package proxion

import (
	"runtime"
	"sync"

	"repro/internal/etypes"
	"repro/internal/solc"
)

// accessCache memoizes ExtractStorageAccesses by bytecode hash.
type accessCache struct {
	mu sync.Mutex
	m  map[etypes.Hash][]StorageAccess
}

func newAccessCache() *accessCache {
	return &accessCache{m: make(map[etypes.Hash][]StorageAccess)}
}

func (c *accessCache) get(code []byte) []StorageAccess {
	h := etypes.Keccak(code)
	c.mu.Lock()
	cached, ok := c.m[h]
	c.mu.Unlock()
	if ok {
		return cached
	}
	accs := ExtractStorageAccesses(code)
	c.mu.Lock()
	c.m[h] = accs
	c.mu.Unlock()
	return accs
}

// SourceProvider resolves a contract's verified source, if published. The
// etherscan package implements it; nil results mean bytecode-only analysis.
type SourceProvider interface {
	Source(addr etypes.Address) *solc.Contract
}

// PairAnalysis is the full collision assessment of one proxy/logic pair
// (Section 5).
type PairAnalysis struct {
	Proxy etypes.Address
	Logic etypes.Address
	// ProxyHasSource/LogicHasSource record which analysis path ran.
	ProxyHasSource bool
	LogicHasSource bool
	Functions      []FunctionCollision
	Storage        []StorageCollision
	// ExploitVerified is set when the dynamic replay confirmed a storage
	// collision exploit.
	ExploitVerified bool
}

// AnalyzePair detects function and storage collisions for one proxy/logic
// pair, choosing source- or bytecode-level techniques per availability.
func (d *Detector) AnalyzePair(proxy, logic etypes.Address, sources SourceProvider) PairAnalysis {
	pa := PairAnalysis{Proxy: proxy, Logic: logic}
	proxyCode := d.chain.Code(proxy)
	logicCode := d.chain.Code(logic)

	var proxySrc, logicSrc *solc.Contract
	if sources != nil {
		proxySrc = sources.Source(proxy)
		logicSrc = sources.Source(logic)
	}
	pa.ProxyHasSource = proxySrc != nil
	pa.LogicHasSource = logicSrc != nil

	pa.Functions = FunctionCollisions(proxyCode, logicCode, proxySrc, logicSrc)

	proxyAcc := d.accessCache.get(proxyCode)
	logicAcc := d.accessCache.get(logicCode)
	pa.Storage = StorageCollisions(proxyAcc, logicAcc)
	if len(pa.Storage) > 0 {
		pa.ExploitVerified = d.VerifyStorageExploit(proxy, logic, pa.Storage)
		if pa.ExploitVerified {
			for i := range pa.Storage {
				if pa.Storage[i].Exploitable {
					pa.Storage[i].Verified = true
				}
			}
		}
	}
	return pa
}

// Result is the output of a whole-chain analysis run.
type Result struct {
	// Reports holds one detection report per examined contract, in the
	// chain's deterministic contract order.
	Reports []Report
	// Pairs holds the collision analysis of every detected proxy with its
	// current logic contract.
	Pairs []PairAnalysis
}

// Proxies returns the subset of reports that detected a proxy.
func (r *Result) Proxies() []Report {
	var out []Report
	for _, rep := range r.Reports {
		if rep.IsProxy {
			out = append(out, rep)
		}
	}
	return out
}

// AnalyzeAll runs detection over every alive contract, then collision
// analysis over every detected pair. Detection runs on a worker pool: each
// emulation is independent (overlay state), which is what lets the paper
// process ~150 contracts per second on a commodity machine.
func (d *Detector) AnalyzeAll(sources SourceProvider) *Result {
	addrs := d.chain.Contracts()
	reports := make([]Report, len(addrs))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(addrs) {
		workers = len(addrs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				reports[i] = d.Check(addrs[i])
			}
		}()
	}
	for i := range addrs {
		next <- i
	}
	close(next)
	wg.Wait()

	res := &Result{Reports: reports}
	for _, rep := range reports {
		if rep.IsProxy && !rep.Logic.IsZero() {
			res.Pairs = append(res.Pairs, d.AnalyzePair(rep.Address, rep.Logic, sources))
		}
	}
	return res
}

// AnalyzeSince runs detection only over contracts deployed after the given
// block height — the incremental mode a production deployment would use to
// keep pace with the chain instead of re-scanning all 36M contracts.
func (d *Detector) AnalyzeSince(height uint64, sources SourceProvider) *Result {
	res := &Result{}
	for _, addr := range d.chain.Contracts() {
		if d.chain.CreatedAt(addr) <= height {
			continue
		}
		rep := d.Check(addr)
		res.Reports = append(res.Reports, rep)
		if rep.IsProxy && !rep.Logic.IsZero() {
			res.Pairs = append(res.Pairs, d.AnalyzePair(rep.Address, rep.Logic, sources))
		}
	}
	return res
}
