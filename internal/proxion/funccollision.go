package proxion

import (
	"sort"
	"sync"

	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/solc"
)

// FunctionCollision is a selector shared by a proxy and its logic contract:
// call data carrying it executes the proxy's function and can never reach
// the logic's (Section 2.3).
type FunctionCollision struct {
	Selector [4]byte
	// ProxyProto and LogicProto are the colliding prototypes when source
	// is available; empty for bytecode-only contracts, where only the
	// 4-byte selector is recoverable.
	ProxyProto string
	LogicProto string
}

// FunctionCollisionsSource intersects the declared function signatures of
// two contracts with available source code — the Slither-style path
// (Section 5.1).
func FunctionCollisionsSource(proxy, logic *solc.Contract) []FunctionCollision {
	logicBySel := make(map[[4]byte]string)
	for _, proto := range logic.Prototypes() {
		logicBySel[selectorOf(proto)] = proto
	}
	var out []FunctionCollision
	for _, proto := range proxy.Prototypes() {
		sel := selectorOf(proto)
		if lp, ok := logicBySel[sel]; ok {
			out = append(out, FunctionCollision{Selector: sel, ProxyProto: proto, LogicProto: lp})
		}
	}
	sortCollisions(out)
	return out
}

// FunctionCollisionsBytecode cross-checks the dispatcher-extracted
// signatures of two bytecode-only contracts — the capability no prior tool
// had (Table 1). Dispatcher-pattern extraction avoids the false positives
// of treating every PUSH4 immediate as a signature.
func FunctionCollisionsBytecode(proxyCode, logicCode []byte) []FunctionCollision {
	return intersectSelectors(
		disasm.DispatcherSelectors(proxyCode),
		disasm.DispatcherSelectors(logicCode))
}

// selectorSets combines the available views: source prototypes when
// present, dispatcher extraction otherwise.
type selectorView struct {
	selectors [][4]byte
	protoOf   map[[4]byte]string
}

func viewOf(code []byte, src *solc.Contract) selectorView {
	if src != nil {
		v := selectorView{protoOf: make(map[[4]byte]string)}
		for _, proto := range src.Prototypes() {
			sel := selectorOf(proto)
			v.selectors = append(v.selectors, sel)
			v.protoOf[sel] = proto
		}
		return v
	}
	return selectorView{selectors: disasm.DispatcherSelectors(code)}
}

// FunctionCollisions detects selector collisions for a proxy/logic pair
// with any combination of source availability.
func FunctionCollisions(proxyCode, logicCode []byte, proxySrc, logicSrc *solc.Contract) []FunctionCollision {
	pv := viewOf(proxyCode, proxySrc)
	lv := viewOf(logicCode, logicSrc)
	logicSet := make(map[[4]byte]struct{}, len(lv.selectors))
	for _, s := range lv.selectors {
		logicSet[s] = struct{}{}
	}
	var out []FunctionCollision
	for _, s := range pv.selectors {
		if _, ok := logicSet[s]; ok {
			out = append(out, FunctionCollision{
				Selector:   s,
				ProxyProto: pv.protoOf[s],
				LogicProto: lv.protoOf[s],
			})
		}
	}
	sortCollisions(out)
	return out
}

func intersectSelectors(a, b [][4]byte) []FunctionCollision {
	set := make(map[[4]byte]struct{}, len(b))
	for _, s := range b {
		set[s] = struct{}{}
	}
	var out []FunctionCollision
	for _, s := range a {
		if _, ok := set[s]; ok {
			out = append(out, FunctionCollision{Selector: s})
		}
	}
	sortCollisions(out)
	return out
}

func sortCollisions(cs []FunctionCollision) {
	sort.Slice(cs, func(i, j int) bool {
		for k := 0; k < 4; k++ {
			if cs[i].Selector[k] != cs[j].Selector[k] {
				return cs[i].Selector[k] < cs[j].Selector[k]
			}
		}
		return false
	})
}

// selectorMemo caches the keccak of function prototypes process-wide:
// selectorOf is a pure function and prototype strings repeat across every
// analyzed pair, so hashing each one once is enough.
var selectorMemo sync.Map // string -> [4]byte

func selectorOf(proto string) [4]byte {
	if v, ok := selectorMemo.Load(proto); ok {
		return v.([4]byte)
	}
	sel := etypes.Keccak([]byte(proto)).SelectorBytes()
	selectorMemo.Store(proto, sel)
	return sel
}

// viewKey identifies one memoized selector view: the bytecode hash plus the
// resolved source contract (distinct sources over identical bytecode get
// distinct entries; the pointer is a stable identity within one registry).
type viewKey struct {
	hash etypes.Hash
	src  *solc.Contract
}

// viewCache memoizes viewOf per (bytecode, source) — the duplicate-heavy
// landscape reuses the same logic contract across hundreds of pairs.
type viewCache struct {
	mu sync.Mutex
	m  map[viewKey]selectorView
}

func newViewCache() *viewCache {
	return &viewCache{m: make(map[viewKey]selectorView)}
}

func (c *viewCache) get(hash etypes.Hash, code []byte, src *solc.Contract) selectorView {
	k := viewKey{hash: hash, src: src}
	c.mu.Lock()
	v, ok := c.m[k]
	c.mu.Unlock()
	if ok {
		return v
	}
	v = viewOf(code, src)
	c.mu.Lock()
	c.m[k] = v
	c.mu.Unlock()
	return v
}

// functionCollisions is FunctionCollisions with the per-bytecode views
// served from the detector's memo.
func (d *Detector) functionCollisions(proxyHash, logicHash etypes.Hash, proxyCode, logicCode []byte, proxySrc, logicSrc *solc.Contract) []FunctionCollision {
	pv := d.viewCache.get(proxyHash, proxyCode, proxySrc)
	lv := d.viewCache.get(logicHash, logicCode, logicSrc)
	logicSet := make(map[[4]byte]struct{}, len(lv.selectors))
	for _, s := range lv.selectors {
		logicSet[s] = struct{}{}
	}
	var out []FunctionCollision
	for _, s := range pv.selectors {
		if _, ok := logicSet[s]; ok {
			out = append(out, FunctionCollision{
				Selector:   s,
				ProxyProto: pv.protoOf[s],
				LogicProto: lv.protoOf[s],
			})
		}
	}
	sortCollisions(out)
	return out
}

// selectorCache memoizes dispatcher extraction by code hash. The paper
// exploits the extreme duplication of deployed bytecode (Figure 5) the same
// way: identical contracts are analyzed once.
type selectorCache struct {
	mu sync.Mutex
	m  map[etypes.Hash][][4]byte
}

func newSelectorCache() *selectorCache {
	return &selectorCache{m: make(map[etypes.Hash][][4]byte)}
}

// get returns the dispatcher selectors for code, computing them at most
// once per distinct bytecode.
func (c *selectorCache) get(code []byte) [][4]byte {
	h := etypes.Keccak(code)
	c.mu.Lock()
	cached, ok := c.m[h]
	c.mu.Unlock()
	if ok {
		return cached
	}
	sels := disasm.DispatcherSelectors(code)
	c.mu.Lock()
	c.m[h] = sels
	c.mu.Unlock()
	return sels
}
