package proxion

import (
	"container/list"
	"sync"

	"repro/internal/etypes"
	"repro/internal/static"
)

// The verdict cache's first-level key is the exact bytecode hash, which
// already collapses the landscape's 98.7% byte-identical duplication. What
// it cannot collapse are near-clones: EIP-1167 stamps differing only in the
// embedded implementation address, or compiler twins differing only in a
// 32-byte slot constant. Each such variant is a distinct code hash and costs
// a full emulation under the exact cache.
//
// The structural index is the second-level key. It groups bytecodes by
// their static fingerprint (wide PUSH immediates masked, see
// static.Fingerprint) and runs a leader/follower protocol per family:
//
//   - The first code hash of a family is the leader. It is emulated
//     normally; if the dynamic verdict is a cleanly forwarding proxy with
//     no guard slots, the leader's own static summary is cross-checked
//     against the dynamic verdict (exemplarConsistent). Only if statics
//     and dynamics agree is the family registered.
//   - Every later first-visit code hash with the same fingerprint is a
//     follower. It runs the static analysis on its *own* bytes and, when
//     the summary has the same uniform shape, re-anchors the verdict to
//     its own embedded address or its own storage slot value (promote) —
//     no emulation. A follower whose summary does not fit is rejected and
//     emulated normally, so promotion can only skip work, never change a
//     verdict that disagrees with emulation.
//
// Registration is deliberately conservative: negative verdicts never
// register (their EmulationErr/Reason can differ per twin), truncated or
// masked-immediate-control-flow summaries never register nor promote, and
// guard-slot-reading fallbacks never register (a twin's guard state is not
// comparable across different code hashes).
type structuralIndex struct {
	mu       sync.Mutex
	m        map[etypes.Hash]*fpClass
	capacity int
	// order tracks recency front-to-back (front = most recent); each
	// element's Value is the fingerprint key. elems indexes into it.
	order *list.List
	elems map[etypes.Hash]*list.Element
}

// fpClass is the state of one structural clone family. registered and
// target are written by the leader before close(done) and read by
// followers only after <-done, which is what makes them safe without a
// lock of their own.
type fpClass struct {
	done       chan struct{}
	registered bool
	target     TargetSource
}

func newStructuralIndex() *structuralIndex {
	return &structuralIndex{
		m:     make(map[etypes.Hash]*fpClass),
		order: list.New(),
		elems: make(map[etypes.Hash]*list.Element),
	}
}

// setCapacity bounds the index like the verdict cache: n <= 0 is
// unbounded, n > 0 keeps at most n families, evicting least recently
// used. An evicted family's in-flight leader finishes harmlessly into the
// orphan; the next arrival of that fingerprint becomes a fresh leader.
func (s *structuralIndex) setCapacity(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 {
		n = 0
	}
	s.capacity = n
	s.evictLocked()
}

// class returns the family for fp and whether the caller claimed
// leadership of a brand-new family. A leader MUST close(cls.done) on every
// exit path, or followers block forever.
func (s *structuralIndex) class(fp etypes.Hash) (cls *fpClass, leader bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.m[fp]; ok {
		s.order.MoveToFront(s.elems[fp])
		return c, false
	}
	c := &fpClass{done: make(chan struct{})}
	s.m[fp] = c
	s.elems[fp] = s.order.PushFront(fp)
	s.evictLocked()
	return c, true
}

func (s *structuralIndex) evictLocked() {
	if s.capacity <= 0 {
		return
	}
	for len(s.m) > s.capacity {
		back := s.order.Back()
		if back == nil {
			return
		}
		key := back.Value.(etypes.Hash)
		s.order.Remove(back)
		delete(s.elems, key)
		delete(s.m, key)
	}
}

func (s *structuralIndex) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// invalidate drops one family, reporting whether it existed. Exactly like
// eviction, an in-flight leader finishes harmlessly into the orphan and
// the next arrival of the fingerprint becomes a fresh leader that
// re-reads live chain state.
func (s *structuralIndex) invalidate(fp etypes.Hash) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[fp]; !ok {
		return false
	}
	if el, ok := s.elems[fp]; ok {
		s.order.Remove(el)
		delete(s.elems, fp)
	}
	delete(s.m, fp)
	return true
}

// probeSource says how a deduped check obtained its verdict.
type probeSource uint8

const (
	// sourceEmulated means the verdict came from a fresh emulation probe.
	sourceEmulated probeSource = iota
	// sourceExactHit means the exact-bytecode verdict cache served it.
	sourceExactHit
	// sourceStructuralHit means a structural near-clone promotion served
	// it without emulating.
	sourceStructuralHit
)

// probeTrace is the accounting record of one checkDeduped call, consumed
// by the pipeline's counter stage.
type probeTrace struct {
	source probeSource
	// analyzed reports that a static summary was computed for this
	// contract (leader cross-check or follower promotion attempt).
	analyzed bool
	// rejected reports that the structural layer looked at this contract
	// and refused to register or promote it.
	rejected bool
}

// recordFirst handles the once-protected first visit of a distinct code
// hash: it decides between plain emulation, family registration (leader)
// and near-clone promotion (follower), and populates the verdict-cache
// entry either way so exact duplicates of this hash hit level one.
func (d *Detector) recordFirst(entry *codeVerdict, addr etypes.Address, code []byte) (Report, probeTrace) {
	var tr probeTrace
	if d.structuralOff || d.structural == nil {
		out := d.emulateProbe(addr, code, CraftCallData(addr, code))
		d.recordOutcome(entry, addr, out)
		return out.rep, tr
	}

	fp := static.Fingerprint(code)
	cls, leader := d.structural.class(fp)
	if leader {
		// Close on every exit path — including a ReadError panic unwinding
		// through here — so followers never block on a dead leader. A
		// panicked leader leaves registered=false and followers emulate.
		defer close(cls.done)
		out := d.emulateProbe(addr, code, CraftCallData(addr, code))
		d.recordOutcome(entry, addr, out)
		if out.rep.IsProxy && out.rep.EmulationErr == nil && len(out.guardSlots) == 0 {
			sum := static.Analyze(code)
			tr.analyzed = true
			if exemplarConsistent(sum, out.rep, addr) {
				cls.target = out.rep.Target
				cls.registered = true
			} else {
				tr.rejected = true
			}
		}
		return out.rep, tr
	}

	<-cls.done
	if !cls.registered {
		out := d.emulateProbe(addr, code, CraftCallData(addr, code))
		d.recordOutcome(entry, addr, out)
		return out.rep, tr
	}
	sum := static.Analyze(code)
	tr.analyzed = true
	if rep, ok := d.promote(addr, sum, cls.target); ok {
		d.recordPromoted(entry, addr, rep)
		tr.source = sourceStructuralHit
		return rep, tr
	}
	tr.rejected = true
	out := d.emulateProbe(addr, code, CraftCallData(addr, code))
	d.recordOutcome(entry, addr, out)
	return out.rep, tr
}

// recordOutcome populates a fresh verdict-cache entry from an emulation.
func (d *Detector) recordOutcome(entry *codeVerdict, addr etypes.Address, out probeOutcome) {
	entry.firstAddr = addr
	entry.guardSlots = out.guardSlots
	entry.byFP = map[etypes.Hash]*probeVerdict{
		d.guardFingerprint(addr, entry.guardSlots): verdictOf(out.rep),
	}
}

// recordPromoted populates a fresh verdict-cache entry from a structural
// promotion. Promotion only fires for families whose exemplar read no
// guard slots, so the entry's guard set is empty by construction and exact
// duplicates of this hash transfer under the zero fingerprint.
func (d *Detector) recordPromoted(entry *codeVerdict, addr etypes.Address, rep Report) {
	entry.firstAddr = addr
	entry.guardSlots = nil
	entry.byFP = map[etypes.Hash]*probeVerdict{
		{}: verdictOf(rep),
	}
}

// exemplarConsistent cross-checks the family exemplar's static summary
// against its dynamic verdict. Registration requires the two analyses to
// tell the same story: every reachable DELEGATECALL forwards the full call
// data from an untainted target whose static provenance pins exactly the
// dynamically observed source (the embedded address for hard-coded
// proxies, the implementation slot for storage proxies). Anything the
// static layer could not stabilize (Truncated), any masked immediate
// influencing control flow, and any self-targeting delegate refuses the
// whole family.
func exemplarConsistent(sum *static.Summary, rep Report, addr etypes.Address) bool {
	if sum.Truncated || sum.MaskedImmFlow || len(sum.Delegates) == 0 {
		return false
	}
	for _, del := range sum.Delegates {
		if !del.ForwardsCalldata || del.TargetTainted {
			return false
		}
		switch rep.Target {
		case TargetHardcoded:
			if del.Provenance != static.ProvHardcoded || del.Target != rep.Logic || rep.Logic == addr {
				return false
			}
		case TargetStorage:
			if del.Provenance != static.ProvSlotConst || del.Slot != rep.ImplSlot {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// promote re-anchors a registered family's verdict to a follower from the
// follower's own static summary: the embedded address for hard-coded
// families, the follower's own slot value for storage families. It applies
// the same uniformity checks as registration and the same refusals as the
// exact cache's transferable (self-targeting delegates, packed storage
// slots), so a promoted report is byte-for-byte what emulation plus
// anchorVerdict would have produced.
func (d *Detector) promote(addr etypes.Address, sum *static.Summary, target TargetSource) (Report, bool) {
	if sum.Truncated || sum.MaskedImmFlow || len(sum.Delegates) == 0 {
		return Report{}, false
	}
	lead := sum.Delegates[0]
	for _, del := range sum.Delegates {
		if !del.ForwardsCalldata || del.TargetTainted {
			return Report{}, false
		}
		if del.Provenance != lead.Provenance || del.Target != lead.Target || del.Slot != lead.Slot {
			return Report{}, false
		}
	}

	rep := Report{Address: addr, HasDelegateCall: true, IsProxy: true, Target: target}
	switch target {
	case TargetHardcoded:
		if lead.Provenance != static.ProvHardcoded || lead.Target == addr {
			return Report{}, false
		}
		rep.Logic = lead.Target
	case TargetStorage:
		if lead.Provenance != static.ProvSlotConst {
			return Report{}, false
		}
		slotVal := d.chain.GetState(addr, lead.Slot)
		for _, b := range slotVal[:12] {
			if b != 0 {
				return Report{}, false
			}
		}
		rep.ImplSlot = lead.Slot
		rep.Logic = etypes.BytesToAddress(slotVal[:])
	default:
		return Report{}, false
	}
	rep.Reason = "fallback forwarded the probe call data via DELEGATECALL to " + rep.Logic.Hex()
	return rep, true
}

// StructuralFamilies returns how many structural clone families the index
// currently tracks. Like CacheEvictions this is a diagnostic, not a
// deterministic pipeline counter.
func (d *Detector) StructuralFamilies() int { return d.structural.len() }
