package proxion

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"

	"repro/internal/chain"
	"repro/internal/etypes"
)

// goldenEntry is a fixed cache entry exercising every field: two guard
// slots in semantic (non-sorted) order, a forwarded storage verdict, a
// non-forwarded verdict with an emulation error, and an empty-reason
// verdict.
func goldenEntry() CacheEntry {
	h := func(b byte) (out etypes.Hash) { out[0] = b; out[31] = b ^ 0xff; return }
	a := func(b byte) (out etypes.Address) { out[0] = b; out[19] = b + 1; return }
	return CacheEntry{
		CodeHash:   h(0x11),
		FirstAddr:  a(0x22),
		GuardSlots: []etypes.Hash{h(0xb0), h(0xa0)}, // deliberately not sorted
		Verdicts: []CachedVerdict{
			{
				Fingerprint:  h(0x02),
				Forwarded:    false,
				Target:       TargetUnknown,
				EmulationErr: "evm: out of gas",
				Reason:       "emulation aborted: evm: out of gas",
			},
			{
				Fingerprint: h(0x01),
				Forwarded:   true,
				Target:      TargetStorage,
				ImplSlot:    h(0xc0),
				Logic:       a(0x33),
				Reason:      "fallback forwarded the probe call data via DELEGATECALL to " + a(0x33).Hex(),
			},
		},
	}
}

// TestCacheEntryGoldenRoundTrip pins the binary encoding byte-for-byte:
// the golden hex below must never change without bumping
// cacheEntryVersion, or persisted stores would silently misdecode.
func TestCacheEntryGoldenRoundTrip(t *testing.T) {
	e := goldenEntry()
	enc, err := e.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}

	const golden = "0111000000000000000000000000000000000000000000000000000000000000" +
		"ee220000000000000000000000000000000000002300000002b0000000000000" +
		"0000000000000000000000000000000000000000000000004fa0000000000000" +
		"0000000000000000000000000000000000000000000000005f00000002010000" +
		"00000000000000000000000000000000000000000000000000000000fe0102c0" +
		"0000000000000000000000000000000000000000000000000000000000003f33" +
		"00000000000000000000000000000000000034000000000000006566616c6c62" +
		"61636b20666f72776172646564207468652070726f62652063616c6c20646174" +
		"61207669612044454c454741544543414c4c20746f2030783333303030303030" +
		"3030303030303030303030303030303030303030303030303030303030303334" +
		"02000000000000000000000000000000000000000000000000000000000000fd" +
		"0000000000000000000000000000000000000000000000000000000000000000" +
		"000000000000000000000000000000000000000000000000000f65766d3a206f" +
		"7574206f662067617300000022656d756c6174696f6e2061626f727465643a20" +
		"65766d3a206f7574206f6620676173"
	if got := hex.EncodeToString(enc); got != golden {
		t.Fatalf("encoding drifted from golden without a version bump:\n got:  %s\n want: %s", got, golden)
	}

	// Byte-stability: marshaling twice, and marshaling with the verdicts
	// pre-sorted differently, must give identical bytes.
	enc2, _ := e.MarshalBinary()
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("MarshalBinary is not deterministic")
	}
	swapped := e
	swapped.Verdicts = []CachedVerdict{e.Verdicts[1], e.Verdicts[0]}
	enc3, _ := swapped.MarshalBinary()
	if !bytes.Equal(enc, enc3) {
		t.Fatalf("MarshalBinary depends on verdict order:\n a=%s\n b=%s",
			hex.EncodeToString(enc), hex.EncodeToString(enc3))
	}

	var dec CacheEntry
	if err := dec.UnmarshalBinary(enc); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	// After decoding, verdicts are in fingerprint order; re-marshaling
	// must reproduce the exact bytes (the store's skip-identical-put
	// optimization depends on this).
	reenc, err := dec.MarshalBinary()
	if err != nil {
		t.Fatalf("re-MarshalBinary: %v", err)
	}
	if !bytes.Equal(enc, reenc) {
		t.Fatalf("round trip not byte-stable:\n a=%s\n b=%s",
			hex.EncodeToString(enc), hex.EncodeToString(reenc))
	}

	// Field-level round trip (guard slot order preserved verbatim).
	if dec.CodeHash != e.CodeHash || dec.FirstAddr != e.FirstAddr {
		t.Fatalf("identity fields did not round-trip")
	}
	if len(dec.GuardSlots) != 2 || dec.GuardSlots[0] != e.GuardSlots[0] || dec.GuardSlots[1] != e.GuardSlots[1] {
		t.Fatalf("guard slots reordered or lost: %v", dec.GuardSlots)
	}
	if len(dec.Verdicts) != 2 {
		t.Fatalf("got %d verdicts, want 2", len(dec.Verdicts))
	}
	// Sorted by fingerprint: h(0x01) first.
	if !dec.Verdicts[0].Forwarded || dec.Verdicts[0].Target != TargetStorage {
		t.Fatalf("forwarded verdict did not round-trip: %+v", dec.Verdicts[0])
	}
	if dec.Verdicts[1].EmulationErr != "evm: out of gas" {
		t.Fatalf("emulation error did not round-trip: %+v", dec.Verdicts[1])
	}
}

// TestCacheEntryUnmarshalRejectsCorruption exercises the decoder's error
// paths: truncation at every prefix must error, never panic, and trailing
// garbage is rejected.
func TestCacheEntryUnmarshalRejectsCorruption(t *testing.T) {
	enc, err := goldenEntry().MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	for n := 0; n < len(enc); n++ {
		var dec CacheEntry
		if err := dec.UnmarshalBinary(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
	var dec CacheEntry
	if err := dec.UnmarshalBinary(append(append([]byte{}, enc...), 0x00)); err == nil {
		t.Fatalf("trailing garbage decoded without error")
	}
	bad := append([]byte{}, enc...)
	bad[0] = cacheEntryVersion + 1
	if err := dec.UnmarshalBinary(bad); err == nil {
		t.Fatalf("wrong version decoded without error")
	}
}

// TestExportImportParity runs the detector over a duplicated-bytecode
// chain, exports the cache, imports it into a fresh detector over the same
// chain, and requires (1) identical verdicts and (2) zero fresh
// emulations on the warm side — the property the persistent store exists
// to provide.
func TestExportImportParity(t *testing.T) {
	ch := chain.New()
	logic := etypes.MustAddress("0x00000000000000000000000000000000000000aa")
	ch.InstallContract(logic, []byte{0x60, 0x00, 0x60, 0x00, 0xf3}) // trivial stop-ish logic
	// Two byte-identical EIP-1167 clones of the same logic.
	clone := minimalProxyCode(logic)
	p1 := etypes.MustAddress("0x0000000000000000000000000000000000000b01")
	p2 := etypes.MustAddress("0x0000000000000000000000000000000000000b02")
	ch.InstallContract(p1, clone)
	ch.InstallContract(p2, clone)

	cold := NewDetector(ch)
	var coldReps []Report
	for _, a := range []etypes.Address{p1, p2} {
		coldReps = append(coldReps, withStream(t, cold, a))
	}
	entries := cold.ExportVerdicts()
	if len(entries) == 0 {
		t.Fatalf("no exportable entries after a proxy analysis")
	}

	// Round-trip through bytes, as the store would.
	var rt []CacheEntry
	for _, e := range entries {
		b, err := e.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary: %v", err)
		}
		var dec CacheEntry
		if err := dec.UnmarshalBinary(b); err != nil {
			t.Fatalf("UnmarshalBinary: %v", err)
		}
		rt = append(rt, dec)
	}

	warm := NewDetector(ch)
	if n := warm.ImportVerdicts(rt); n != len(rt) {
		t.Fatalf("imported %d of %d entries", n, len(rt))
	}
	// Importing again is a no-op: live entries win.
	if n := warm.ImportVerdicts(rt); n != 0 {
		t.Fatalf("re-import clobbered %d live entries", n)
	}

	for i, a := range []etypes.Address{p1, p2} {
		warmRep := withStream(t, warm, a)
		if cold, warm := reportString(coldReps[i]), reportString(warmRep); cold != warm {
			t.Fatalf("verdict for %v differs cold vs warm:\n cold: %s\n warm: %s", a, cold, warm)
		}
	}
}

// withStream analyzes one address through the streaming engine (the code
// path the service uses) and returns its report, failing the test on a
// missing emission.
func withStream(t *testing.T, d *Detector, addr etypes.Address) Report {
	t.Helper()
	var got *Report
	snap := d.AnalyzeStream(SliceSource([]etypes.Address{addr}), nil,
		SinkFunc(func(it Item) { r := it.Report; got = &r }), AnalyzeOptions{})
	if got == nil || snap == nil {
		t.Fatalf("no item emitted for %v", addr)
	}
	return *got
}

// reportString renders the observable verdict fields for comparison.
func reportString(r Report) string {
	errStr := func(e error) string {
		if e == nil {
			return "<nil>"
		}
		return e.Error()
	}
	return r.Address.Hex() + "|" + boolStr(r.IsProxy) + "|" + r.Logic.Hex() + "|" +
		r.Target.String() + "|" + r.ImplSlot.Hex() + "|" + r.Standard.String() + "|" +
		boolStr(r.HasDelegateCall) + "|" + errStr(r.EmulationErr) + "|" + r.Reason
}

func boolStr(b bool) string {
	if b {
		return "t"
	}
	return "f"
}

// minimalProxyCode builds the canonical EIP-1167 runtime for a target.
func minimalProxyCode(target etypes.Address) []byte {
	code := []byte{
		0x36, 0x3d, 0x3d, 0x37, 0x3d, 0x3d, 0x3d, 0x36, 0x3d, 0x73,
	}
	code = append(code, target[:]...)
	code = append(code,
		0x5a, 0xf4, 0x3d, 0x82, 0x80, 0x3e, 0x90, 0x3d, 0x91, 0x60, 0x2b, 0x57, 0xfd, 0x5b, 0xf3)
	return code
}

// TestImportedErrorRehydration pins that a persisted emulation error
// reproduces its text through the error interface.
func TestImportedErrorRehydration(t *testing.T) {
	var e error = persistedError("evm: stack underflow")
	if e.Error() != "evm: stack underflow" {
		t.Fatalf("persistedError text mismatch: %q", e.Error())
	}
	var target persistedError
	if !errors.As(e, &target) {
		t.Fatalf("errors.As failed on persistedError")
	}
}
