package proxion

import "repro/internal/etypes"

// HistoricalAnalysis is the collision assessment of one proxy against every
// logic contract it ever delegated to. Upgrades are where storage layouts
// drift (Section 2.3: "upgrading the logic contract to newer versions that
// change the order or types of variables also facilitates storage
// collisions"), so analyzing only the current pair under-reports.
type HistoricalAnalysis struct {
	Proxy etypes.Address
	// Pairs holds one analysis per historical logic, oldest first.
	Pairs []PairAnalysis
}

// AnyCollision reports whether any historical pair collides.
func (h HistoricalAnalysis) AnyCollision() bool {
	for _, pa := range h.Pairs {
		if len(pa.Functions) > 0 || len(pa.Storage) > 0 {
			return true
		}
	}
	return false
}

// AnalyzePairHistory recovers the proxy's full logic history with Algorithm
// 1 and runs the collision analysis against each version. For hard-coded
// (minimal) proxies the single fixed logic is analyzed.
func (d *Detector) AnalyzePairHistory(rep Report, sources SourceProvider) HistoricalAnalysis {
	out := HistoricalAnalysis{Proxy: rep.Address}
	if !rep.IsProxy {
		return out
	}
	var logics []etypes.Address
	if rep.Target == TargetStorage {
		logics = d.LogicHistory(rep.Address, rep.ImplSlot)
	} else {
		logics = []etypes.Address{rep.Logic}
	}
	for _, logic := range logics {
		if logic.IsZero() {
			continue
		}
		out.Pairs = append(out.Pairs, d.AnalyzePair(rep.Address, logic, sources))
	}
	return out
}
