package proxion

import (
	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/u256"
)

// overlayState is a copy-on-write view over the canonical chain. Emulation
// runs (Section 4.2) execute arbitrary contract code, including SSTOREs and
// CREATEs; the overlay absorbs all of that so detection never perturbs the
// chain and many detections can run concurrently over a frozen chain.
//
// readerpanic:ignore-file — the overlay's base reads are evm.StateDB
// callbacks: the interpreter only ever invokes them inside the probe's
// chain.CaptureReadError (detector.go), a guard the intra-package lint
// cannot see from here.
type overlayState struct {
	base chain.Reader

	code    map[etypes.Address][]byte
	storage map[etypes.Address]map[etypes.Hash]etypes.Hash
	balance map[etypes.Address]u256.Int
	nonce   map[etypes.Address]uint64
	created map[etypes.Address]struct{}
	dead    map[etypes.Address]struct{}

	journal []func()
}

var _ evm.StateDB = (*overlayState)(nil)

func newOverlay(base chain.Reader) *overlayState {
	return &overlayState{
		base:    base,
		code:    make(map[etypes.Address][]byte),
		storage: make(map[etypes.Address]map[etypes.Hash]etypes.Hash),
		balance: make(map[etypes.Address]u256.Int),
		nonce:   make(map[etypes.Address]uint64),
		created: make(map[etypes.Address]struct{}),
		dead:    make(map[etypes.Address]struct{}),
	}
}

func (o *overlayState) Exists(a etypes.Address) bool {
	if _, ok := o.created[a]; ok {
		return true
	}
	return o.base.Exists(a)
}

func (o *overlayState) GetCode(a etypes.Address) []byte {
	if _, gone := o.dead[a]; gone {
		return nil
	}
	if c, ok := o.code[a]; ok {
		return c
	}
	return o.base.Code(a)
}

func (o *overlayState) GetCodeHash(a etypes.Address) etypes.Hash {
	if _, gone := o.dead[a]; gone {
		return etypes.Keccak(nil)
	}
	if c, ok := o.code[a]; ok {
		return etypes.Keccak(c)
	}
	return o.base.CodeHash(a)
}

func (o *overlayState) GetBalance(a etypes.Address) u256.Int {
	if b, ok := o.balance[a]; ok {
		return b
	}
	return o.base.GetBalance(a)
}

func (o *overlayState) Transfer(from, to etypes.Address, v u256.Int) {
	pf, pt := o.GetBalance(from), o.GetBalance(to)
	hadF, hadT := hasKey(o.balance, from), hasKey(o.balance, to)
	o.journal = append(o.journal, func() {
		restore(o.balance, from, pf, hadF)
		restore(o.balance, to, pt, hadT)
	})
	o.balance[from] = pf.Sub(v)
	o.balance[to] = pt.Add(v)
}

func (o *overlayState) GetState(a etypes.Address, k etypes.Hash) etypes.Hash {
	if m, ok := o.storage[a]; ok {
		if v, ok := m[k]; ok {
			return v
		}
	}
	return o.base.GetState(a, k)
}

func (o *overlayState) SetState(a etypes.Address, k, v etypes.Hash) {
	m := o.storage[a]
	if m == nil {
		m = make(map[etypes.Hash]etypes.Hash)
		o.storage[a] = m
	}
	prev, had := m[k]
	o.journal = append(o.journal, func() { restore(m, k, prev, had) })
	m[k] = v
}

func (o *overlayState) GetNonce(a etypes.Address) uint64 {
	if n, ok := o.nonce[a]; ok {
		return n
	}
	return o.base.GetNonce(a)
}

func (o *overlayState) SetNonce(a etypes.Address, n uint64) {
	prev, had := o.nonce[a]
	o.journal = append(o.journal, func() { restore(o.nonce, a, prev, had) })
	o.nonce[a] = n
}

func (o *overlayState) CreateAccount(a etypes.Address) {
	if _, ok := o.created[a]; !ok && !o.base.Exists(a) {
		o.journal = append(o.journal, func() { delete(o.created, a) })
		o.created[a] = struct{}{}
	}
}

func (o *overlayState) SetCode(a etypes.Address, code []byte) {
	prev, had := o.code[a]
	o.journal = append(o.journal, func() { restore(o.code, a, prev, had) })
	o.code[a] = code
}

func (o *overlayState) SelfDestruct(a, beneficiary etypes.Address) {
	o.Transfer(a, beneficiary, o.GetBalance(a))
	_, had := o.dead[a]
	o.journal = append(o.journal, func() {
		if !had {
			delete(o.dead, a)
		}
	})
	o.dead[a] = struct{}{}
}

func (o *overlayState) Snapshot() int { return len(o.journal) }

func (o *overlayState) RevertToSnapshot(rev int) {
	for len(o.journal) > rev {
		o.journal[len(o.journal)-1]()
		o.journal = o.journal[:len(o.journal)-1]
	}
}

func (o *overlayState) AddLog(etypes.Address, []etypes.Hash, []byte) {}

func hasKey[K comparable, V any](m map[K]V, k K) bool {
	_, ok := m[k]
	return ok
}

func restore[K comparable, V any](m map[K]V, k K, prev V, had bool) {
	if had {
		m[k] = prev
	} else {
		delete(m, k)
	}
}
