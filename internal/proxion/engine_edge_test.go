package proxion_test

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/chain"
	"repro/internal/dataset"
	"repro/internal/proxion"
)

// TestAnalyzeEmptyChain runs the streaming engine over a chain with no
// contracts at all: the result must be empty but well-formed, and the
// snapshot's derived rates must be zero rather than NaN.
func TestAnalyzeEmptyChain(t *testing.T) {
	res := proxion.NewDetector(chain.New()).AnalyzeAll(nil)
	if len(res.Reports) != 0 || len(res.Pairs) != 0 {
		t.Fatalf("empty chain produced %d reports, %d pairs", len(res.Reports), len(res.Pairs))
	}
	if res.Stats == nil {
		t.Fatalf("empty run has no stats snapshot")
	}
	if res.Stats.Contracts != 0 || res.Stats.Emulations != 0 || res.Stats.CacheHits != 0 {
		t.Errorf("empty run counted work: %+v", res.Stats)
	}
	for name, v := range map[string]float64{
		"cache_hit_rate":    res.Stats.CacheHitRate,
		"contracts_per_sec": res.Stats.ContractsPerSec,
	} {
		if v != 0 || math.IsNaN(v) {
			t.Errorf("%s = %v on an empty run, want 0", name, v)
		}
	}
}

// TestAnalyzeSingleWorkerEverywhere forces every stage pool to one worker
// with depth-1 channels — the most deadlock-prone configuration — and
// requires full agreement with the sequential reference.
func TestAnalyzeSingleWorkerEverywhere(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 19, Contracts: 120})
	opts := proxion.AnalyzeOptions{
		FilterWorkers: 1, ProbeWorkers: 1, ClassifyWorkers: 1,
		HistoryWorkers: 1, PairWorkers: 1, ChannelDepth: 1,
	}
	got := stripStats(proxion.NewDetector(pop.Chain).AnalyzeAllWithOptions(pop.Registry, opts))
	want := stripStats(sequentialReference(pop.Chain, pop.Registry))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("single-worker depth-1 pipeline diverges from sequential reference")
	}
}
