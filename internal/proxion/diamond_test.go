package proxion_test

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/proxion"
	"repro/internal/solc"
	"repro/internal/u256"
)

// deployDiamond installs an EIP-2535 diamond with one registered facet and
// optionally a past transaction exercising it.
func deployDiamond(t *testing.T, withTx bool) (*chain.Chain, etypes.Address, etypes.Address, [4]byte) {
	t.Helper()
	c := chain.New()
	facet := &solc.Contract{
		Name: "Facet",
		Funcs: []solc.Func{{
			ABI:  abi.Function{Name: "facets"},
			Body: []solc.Stmt{solc.ReturnConst{Value: u256.FromUint64(1)}},
		}},
	}
	facetAddr := etypes.MustAddress("0x0000000000000000000000000000000000004101")
	c.InstallContract(facetAddr, solc.MustCompile(facet))

	baseSlot := etypes.Keccak([]byte("diamond.standard.diamond.storage"))
	diamond := &solc.Contract{
		Name:     "Diamond",
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateDiamond, Slot: baseSlot},
	}
	dAddr := etypes.MustAddress("0x0000000000000000000000000000000000004102")
	c.InstallContract(dAddr, solc.MustCompile(diamond))

	sel := facet.Funcs[0].ABI.Selector()
	selWord := u256.FromBytes(sel[:]).Bytes32()
	pre := make([]byte, 64)
	copy(pre[:32], selWord[:])
	copy(pre[32:], baseSlot[:])
	c.SetStorageDirect(dAddr, etypes.Keccak(pre), etypes.HashFromWord(facetAddr.Word()))

	if withTx {
		sender := etypes.MustAddress("0x0000000000000000000000000000000000004100")
		rc := c.Execute(sender, dAddr, abi.EncodeCall(sel), 0, u256.Zero())
		if !rc.Status {
			t.Fatalf("facet call failed: %v", rc.Err)
		}
	}
	return c, dAddr, facetAddr, sel
}

func TestCheckWithHistoryDetectsDiamond(t *testing.T) {
	c, dAddr, facetAddr, _ := deployDiamond(t, true)
	d := proxion.NewDetector(c)

	// The base pipeline misses the diamond, as the paper documents.
	if rep := d.Check(dAddr); rep.IsProxy {
		t.Fatal("base pipeline should miss the diamond")
	}
	// The history-assisted extension finds it via the transacted selector.
	rep := d.CheckWithHistory(dAddr)
	if !rep.IsProxy {
		t.Fatal("extension failed to detect the diamond")
	}
	if rep.Standard != proxion.StandardEIP2535 {
		t.Errorf("standard = %s, want EIP-2535", rep.Standard)
	}
	if rep.Logic != facetAddr {
		t.Errorf("facet = %s, want %s", rep.Logic, facetAddr)
	}
}

func TestCheckWithHistoryNoTransactions(t *testing.T) {
	c, dAddr, _, _ := deployDiamond(t, false)
	d := proxion.NewDetector(c)
	if rep := d.CheckWithHistory(dAddr); rep.IsProxy {
		t.Error("diamond without transactions must remain undetectable (no selectors to mine)")
	}
}

func TestCheckWithHistoryUnchangedForOrdinaryContracts(t *testing.T) {
	// A standard proxy: the extension must return the same verdict as the
	// base pipeline without extra emulations changing the classification.
	implSlot := etypes.HashFromWord(u256.FromUint64(7))
	c := newChainWithPair(t, implSlot)
	d := proxion.NewDetector(c)
	base := d.Check(proxyAt)
	ext := d.CheckWithHistory(proxyAt)
	if base != ext {
		t.Errorf("extension altered a base verdict: %+v vs %+v", base, ext)
	}
	// And a plain non-proxy with transactions stays negative.
	plainAddr := etypes.MustAddress("0x0000000000000000000000000000000000004200")
	plain := &solc.Contract{
		Name: "Plain",
		Funcs: []solc.Func{{ABI: abi.Function{Name: "x"},
			Body: []solc.Stmt{solc.ReturnConst{Value: u256.One()}}}},
	}
	c.InstallContract(plainAddr, solc.MustCompile(plain))
	sender := etypes.MustAddress("0x0000000000000000000000000000000000004201")
	c.Execute(sender, plainAddr, abi.EncodeCall(abi.SelectorOf("x()")), 0, u256.Zero())
	if rep := d.CheckWithHistory(plainAddr); rep.IsProxy {
		t.Error("plain contract detected by extension")
	}
}
