package experiments

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/etypes"
	"repro/internal/proxion"
)

// years lists the evaluation years in order.
var years = []int{2015, 2016, 2017, 2018, 2019, 2020, 2021, 2022, 2023}

// populationLabels filters the landscape's primary population (excluding
// shared logic/library support contracts, which the paper counts inside
// the general population but we track separately).
func populationLabels(pop *dataset.Population) []*dataset.Label {
	var out []*dataset.Label
	for _, l := range pop.Labels {
		switch l.Kind {
		case dataset.KindLogic, dataset.KindLibrary, dataset.KindDestroyed:
			continue
		}
		out = append(out, l)
	}
	return out
}

// Figure2 reproduces the availability breakdown: cumulative alive contracts
// by (source code × past transactions) per year.
func Figure2(pop *dataset.Population) *Table {
	type counts struct{ both, sourceOnly, txOnly, neither int }
	cum := make(map[int]*counts)
	for _, y := range years {
		cum[y] = &counts{}
	}
	for _, l := range populationLabels(pop) {
		for _, y := range years {
			if y < l.Year {
				continue
			}
			c := cum[y]
			switch {
			case l.HasSource && l.HasTx:
				c.both++
			case l.HasSource:
				c.sourceOnly++
			case l.HasTx:
				c.txOnly++
			default:
				c.neither++
			}
		}
	}
	t := &Table{
		ID:     "Figure 2",
		Title:  "Cumulative alive contracts by source/transaction availability",
		Header: []string{"year", "source+tx", "source only", "tx only", "hidden (neither)", "total"},
	}
	for _, y := range years {
		c := cum[y]
		total := c.both + c.sourceOnly + c.txOnly + c.neither
		t.Rows = append(t.Rows, []string{
			itoa(y), itoa(c.both), itoa(c.sourceOnly), itoa(c.txOnly), itoa(c.neither), itoa(total),
		})
	}
	final := cum[2023]
	total := final.both + final.sourceOnly + final.txOnly + final.neither
	t.Notes = append(t.Notes,
		fmt.Sprintf("source availability %s (paper ~18%%), tx availability %s (paper ~53%% incl. proxies)",
			pct(final.both+final.sourceOnly, total), pct(final.both+final.txOnly, total)),
		"population scaled from 36M to the configured size; proportions are the reproduction target")
	return t
}

// Figure4 reproduces the cumulative proxy/logic pairs by source
// availability, using the detector's verdicts.
func Figure4(pop *dataset.Population, res *proxion.Result) *Table {
	type counts struct{ both, logicOnly, proxyOnly, neither int }
	cum := make(map[int]*counts)
	for _, y := range years {
		cum[y] = &counts{}
	}
	for _, rep := range res.Proxies() {
		l := pop.ByAddr[rep.Address]
		if l == nil {
			continue
		}
		proxySrc := pop.Registry.HasSource(rep.Address)
		logicSrc := pop.Registry.HasSource(rep.Logic)
		for _, y := range years {
			if y < l.Year {
				continue
			}
			c := cum[y]
			switch {
			case proxySrc && logicSrc:
				c.both++
			case logicSrc:
				c.logicOnly++
			case proxySrc:
				c.proxyOnly++
			default:
				c.neither++
			}
		}
	}
	t := &Table{
		ID:     "Figure 4",
		Title:  "Cumulative detected proxy/logic pairs by source availability",
		Header: []string{"year", "both sources", "logic only", "proxy only", "neither", "total"},
	}
	for _, y := range years {
		c := cum[y]
		t.Rows = append(t.Rows, []string{
			itoa(y), itoa(c.both), itoa(c.logicOnly), itoa(c.proxyOnly), itoa(c.neither),
			itoa(c.both + c.logicOnly + c.proxyOnly + c.neither),
		})
	}
	t.Notes = append(t.Notes,
		"paper: ~90% of proxy contracts lack source; the 'logic only' and 'neither' series dominate")
	return t
}

// Table3 reproduces the collision counts per deployment year, plus the
// duplicate share among function collisions.
func Table3(pop *dataset.Population, det *proxion.Detector, res *proxion.Result) *Table {
	funcByYear := make(map[int]int)
	storByYear := make(map[int]int)
	funcTotal, storTotal := 0, 0
	dupFuncCollisions := 0
	templateOfFunc := make(map[int]int) // TemplateID -> collision count

	for _, pa := range res.Pairs {
		l := pop.ByAddr[pa.Proxy]
		if l == nil {
			continue
		}
		if len(pa.Functions) > 0 {
			funcByYear[l.Year]++
			funcTotal++
			templateOfFunc[l.TemplateID]++
		}
		if anyExploitableCols(pa.Storage) {
			storByYear[l.Year]++
			storTotal++
		}
	}
	// Duplicate share: collisions whose proxy bytecode template appears
	// more than once (the paper's 98.7% OwnableDelegateProxy clones).
	for _, n := range templateOfFunc {
		if n > 1 {
			dupFuncCollisions += n
		}
	}

	t := &Table{
		ID:     "Table 3",
		Title:  "Function and storage collisions by proxy deployment year",
		Header: []string{"year", "function collisions", "storage collisions"},
	}
	for _, y := range years {
		t.Rows = append(t.Rows, []string{itoa(y), itoa(funcByYear[y]), itoa(storByYear[y])})
	}
	t.Rows = append(t.Rows, []string{"total", itoa(funcTotal), itoa(storTotal)})
	t.Notes = append(t.Notes,
		fmt.Sprintf("duplicated-bytecode share of function collisions: %s (paper: 98.7%%)",
			pct(dupFuncCollisions, funcTotal)),
		"paper totals: 1,566,784 function and 3,022 storage collisions at 36M-contract scale")
	return t
}

// Figure5 reproduces the bytecode-uniqueness skew: how many distinct proxy
// and logic bytecodes exist and how heavily the top templates dominate.
func Figure5(pop *dataset.Population, res *proxion.Result) *Table {
	proxyDupes := make(map[etypes.Hash]int)
	logicDupes := make(map[etypes.Hash]int)
	logicSeen := make(map[etypes.Address]struct{})
	for _, rep := range res.Proxies() {
		proxyDupes[etypes.Keccak(pop.Chain.Code(rep.Address))]++
		if _, dup := logicSeen[rep.Logic]; !dup {
			logicSeen[rep.Logic] = struct{}{}
			logicDupes[etypes.Keccak(pop.Chain.Code(rep.Logic))]++
		}
	}
	topShare := func(m map[etypes.Hash]int, k int) (int, int) {
		var counts []int
		total := 0
		for _, n := range m {
			counts = append(counts, n)
			total += n
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		top := 0
		for i := 0; i < k && i < len(counts); i++ {
			top += counts[i]
		}
		return top, total
	}
	topProxies, totalProxies := topShare(proxyDupes, 3)

	t := &Table{
		ID:     "Figure 5",
		Title:  "Bytecode uniqueness of detected proxies and logics",
		Header: []string{"metric", "measured", "paper"},
	}
	t.Rows = append(t.Rows,
		[]string{"proxy instances", itoa(totalProxies), "19,599,317"},
		[]string{"unique proxy bytecodes", itoa(len(proxyDupes)), "96,420"},
		[]string{"unique logic bytecodes", itoa(len(logicDupes)), "38,707"},
		[]string{"top-3 proxy template share", pct(topProxies, totalProxies), "~42%"},
	)
	t.Notes = append(t.Notes,
		"the top-3 templates model CoinTool_App, XENTorrent and OwnableDelegateProxy")
	return t
}

// Table4 reproduces the proxy design-standard split.
func Table4(res *proxion.Result) *Table {
	counts := make(map[proxion.Standard]int)
	total := 0
	for _, rep := range res.Proxies() {
		counts[rep.Standard]++
		total++
	}
	t := &Table{
		ID:     "Table 4",
		Title:  "Proxy contracts by design standard",
		Header: []string{"standard", "contracts", "ratio", "paper ratio"},
	}
	t.Rows = append(t.Rows,
		[]string{"EIP-1167", itoa(counts[proxion.StandardEIP1167]), pct(counts[proxion.StandardEIP1167], total), "89.05%"},
		[]string{"EIP-1822", itoa(counts[proxion.StandardEIP1822]), pct(counts[proxion.StandardEIP1822], total), "0.12%"},
		[]string{"EIP-1967", itoa(counts[proxion.StandardEIP1967]), pct(counts[proxion.StandardEIP1967], total), "1.00%"},
		[]string{"Others", itoa(counts[proxion.StandardOther]), pct(counts[proxion.StandardOther], total), "9.83%"},
	)
	t.Notes = append(t.Notes,
		"diamond (EIP-2535) proxies are missed by emulation, as the paper documents")
	return t
}

// Figure6 reproduces the upgrade-count distribution over storage-based
// proxies, recovered with Algorithm 1.
func Figure6(pop *dataset.Population, det *proxion.Detector, res *proxion.Result) *Table {
	histogram := make(map[int]int)
	upgraded, total, events, maxUp := 0, 0, 0, 0
	for _, rep := range res.Proxies() {
		if rep.Target != proxion.TargetStorage {
			// Hard-coded proxies have exactly one logic forever.
			histogram[0]++
			total++
			continue
		}
		n := det.UpgradeCount(rep.Address, rep.ImplSlot)
		histogram[n]++
		total++
		if n > 0 {
			upgraded++
			events += n
		}
		if n > maxUp {
			maxUp = n
		}
	}
	t := &Table{
		ID:     "Figure 6",
		Title:  "Logic-contract upgrade counts per proxy (Algorithm 1)",
		Header: []string{"upgrades", "proxies"},
	}
	var keys []int
	for k := range histogram {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		t.Rows = append(t.Rows, []string{itoa(k), itoa(histogram[k])})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("never upgraded: %s (paper: 99.7%%); upgrade events: %d; max upgrades: %d (paper tail reaches ~80)",
			pct(total-upgraded, total), events, maxUp),
	)
	return t
}
