package experiments

import (
	"repro/internal/dataset"
	"repro/internal/proxion"
)

// years lists the evaluation years in order.
var years = []int{2015, 2016, 2017, 2018, 2019, 2020, 2021, 2022, 2023}

// populationLabels filters the landscape's primary population (excluding
// shared logic/library support contracts, which the paper counts inside
// the general population but we track separately).
func populationLabels(pop *dataset.Population) []*dataset.Label {
	var out []*dataset.Label
	for _, l := range pop.Labels {
		switch l.Kind {
		case dataset.KindLogic, dataset.KindLibrary, dataset.KindDestroyed:
			continue
		}
		out = append(out, l)
	}
	return out
}

// Figure2 reproduces the availability breakdown: cumulative alive contracts
// by (source code × past transactions) per year.
func Figure2(pop *dataset.Population) *Table {
	a := NewLandscape(pop.Chain, pop.Registry, nil)
	for _, l := range pop.Labels {
		a.Observe(l, proxion.Item{})
	}
	return a.Figure2()
}

// Figure4 reproduces the cumulative proxy/logic pairs by source
// availability, using the detector's verdicts.
func Figure4(pop *dataset.Population, res *proxion.Result) *Table {
	a := NewLandscape(pop.Chain, pop.Registry, nil)
	a.replay(pop, res)
	return a.Figure4()
}

// Table3 reproduces the collision counts per deployment year, plus the
// duplicate share among function collisions.
func Table3(pop *dataset.Population, det *proxion.Detector, res *proxion.Result) *Table {
	a := NewLandscape(pop.Chain, pop.Registry, det)
	a.replay(pop, res)
	return a.Table3()
}

// Figure5 reproduces the bytecode-uniqueness skew: how many distinct proxy
// and logic bytecodes exist and how heavily the top templates dominate.
func Figure5(pop *dataset.Population, res *proxion.Result) *Table {
	a := NewLandscape(pop.Chain, pop.Registry, nil)
	a.replay(pop, res)
	return a.Figure5()
}

// Table4 reproduces the proxy design-standard split.
func Table4(res *proxion.Result) *Table {
	a := NewLandscape(nil, nil, nil)
	for _, rep := range res.Proxies() {
		a.observeStandard(rep)
	}
	return a.Table4()
}

// Figure6 reproduces the upgrade-count distribution over storage-based
// proxies, recovered with Algorithm 1.
func Figure6(pop *dataset.Population, det *proxion.Detector, res *proxion.Result) *Table {
	a := NewLandscape(pop.Chain, pop.Registry, det)
	a.replay(pop, res)
	return a.Figure6()
}
