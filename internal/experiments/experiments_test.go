package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/proxion"
)

// smallPop is shared across tests; generation is deterministic.
func smallPop(t *testing.T) *dataset.Population {
	t.Helper()
	return dataset.Generate(dataset.Config{Seed: 11, Contracts: 900})
}

func analyze(t *testing.T, pop *dataset.Population) (*proxion.Detector, *proxion.Result) {
	t.Helper()
	det := proxion.NewDetector(pop.Chain)
	return det, det.AnalyzeAll(pop.Registry)
}

func TestTable2MatchesPaperExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build is a few seconds")
	}
	corpus := dataset.GenerateAccuracyCorpus()
	res := experiments.Table2(corpus)

	assertConf := func(name string, got experiments.Confusion, tp, fp, tn, fn int) {
		t.Helper()
		if got.TP != tp || got.FP != fp || got.TN != tn || got.FN != fn {
			t.Errorf("%s = %+v, want TP=%d FP=%d TN=%d FN=%d", name, got, tp, fp, tn, fn)
		}
	}
	assertConf("storage/USCHunt", res.StorageUSCHunt, 33, 83, 79, 11)
	assertConf("storage/CRUSH", res.StorageCRUSH, 26, 76, 86, 18)
	assertConf("storage/Proxion", res.StorageProxion, 27, 28, 134, 17)
	assertConf("function/USCHunt", res.FuncUSCHunt, 299, 1, 0, 261)
	assertConf("function/Proxion", res.FuncProxion, 557, 0, 1, 3)

	if acc := res.StorageProxion.Accuracy(); acc < 0.78 || acc > 0.79 {
		t.Errorf("Proxion storage accuracy = %.3f, want 0.782", acc)
	}
	if acc := res.FuncProxion.Accuracy(); acc < 0.99 {
		t.Errorf("Proxion function accuracy = %.3f, want 0.995", acc)
	}
}

func TestTable4StandardShares(t *testing.T) {
	pop := smallPop(t)
	_, res := analyze(t, pop)
	table := experiments.Table4(res)
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// EIP-1167 dominates, as in the paper.
	if !strings.HasPrefix(table.Rows[0][0], "EIP-1167") {
		t.Fatalf("row 0 = %v", table.Rows[0])
	}
	var eip1167, others int
	for _, rep := range res.Proxies() {
		switch rep.Standard {
		case proxion.StandardEIP1167:
			eip1167++
		default:
			others++
		}
	}
	if eip1167 <= others*3 {
		t.Errorf("EIP-1167 share too low: %d vs %d others", eip1167, others)
	}
}

func TestFigure2Monotonic(t *testing.T) {
	pop := smallPop(t)
	table := experiments.Figure2(pop)
	if len(table.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 years", len(table.Rows))
	}
	prev := 0
	for _, row := range table.Rows {
		total := atoiOrFail(t, row[5])
		if total < prev {
			t.Errorf("cumulative total decreased: %d after %d", total, prev)
		}
		prev = total
	}
	if prev == 0 {
		t.Error("final population empty")
	}
}

func TestTable3CollisionsCounted(t *testing.T) {
	pop := smallPop(t)
	det, res := analyze(t, pop)
	table := experiments.Table3(pop, det, res)
	totalRow := table.Rows[len(table.Rows)-1]
	if totalRow[0] != "total" {
		t.Fatalf("last row = %v", totalRow)
	}
	if atoiOrFail(t, totalRow[1]) == 0 {
		t.Error("no function collisions found in landscape")
	}
}

func TestFigure5SkewPresent(t *testing.T) {
	pop := smallPop(t)
	_, res := analyze(t, pop)
	table := experiments.Figure5(pop, res)
	instances := atoiOrFail(t, table.Rows[0][1])
	unique := atoiOrFail(t, table.Rows[1][1])
	if unique == 0 || instances == 0 {
		t.Fatal("empty figure 5")
	}
	if instances < unique*10 {
		t.Errorf("duplication skew missing: %d instances over %d uniques", instances, unique)
	}
}

func TestCoverageMatrixShape(t *testing.T) {
	pop := smallPop(t)
	table := experiments.Table1(pop)
	// Proxion's row must cover the hidden bucket; USCHunt's must not.
	var proxionRow, huntRow []string
	for _, row := range table.Rows {
		switch row[0] {
		case "Proxion":
			proxionRow = row
		case "USCHunt":
			huntRow = row
		}
	}
	if proxionRow == nil || huntRow == nil {
		t.Fatal("missing tool rows")
	}
	if !strings.HasPrefix(proxionRow[4], "yes") {
		t.Errorf("Proxion hidden bucket = %q, want yes", proxionRow[4])
	}
	if strings.HasPrefix(huntRow[3], "yes") || strings.HasPrefix(huntRow[4], "yes") {
		t.Errorf("USCHunt covers tx-only/hidden buckets: %v", huntRow)
	}
}

func TestRenderAligned(t *testing.T) {
	table := &experiments.Table{
		ID:     "Test",
		Title:  "t",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"xxxxx", "y"}},
		Notes:  []string{"n"},
	}
	out := table.Render()
	for _, want := range []string{"== Test — t ==", "xxxxx", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func atoiOrFail(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func TestCSVExport(t *testing.T) {
	table := &experiments.Table{
		Header: []string{"year", "count"},
		Rows:   [][]string{{"2023", "1,234"}, {"note \"x\"", "5"}},
	}
	csv := table.CSV()
	want := "year,count\n2023,\"1,234\"\n\"note \"\"x\"\"\",5\n"
	if csv != want {
		t.Errorf("csv = %q, want %q", csv, want)
	}
}

func TestMultiChainSweep(t *testing.T) {
	table := experiments.MultiChain(500, 400)
	if len(table.Rows) != 5 {
		t.Fatalf("networks = %d, want 5", len(table.Rows))
	}
	names := map[string]bool{}
	for _, row := range table.Rows {
		names[row[0]] = true
		if atoiOrFail(t, row[3]) == 0 {
			t.Errorf("%s: no proxies found", row[0])
		}
	}
	for _, want := range []string{"ethereum", "arbitrum", "bsc", "polygon", "optimism"} {
		if !names[want] {
			t.Errorf("missing network %s", want)
		}
	}
}
