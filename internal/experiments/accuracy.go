package experiments

import (
	"repro/internal/crush"
	"repro/internal/dataset"
	"repro/internal/proxion"
	"repro/internal/uschunt"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Accuracy returns (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// record tallies one classification outcome.
func (c *Confusion) record(predicted, truth bool) {
	switch {
	case predicted && truth:
		c.TP++
	case predicted && !truth:
		c.FP++
	case !predicted && !truth:
		c.TN++
	default:
		c.FN++
	}
}

// Table2Result carries the per-tool confusion matrices of the accuracy
// comparison (Section 6.3).
type Table2Result struct {
	StorageUSCHunt Confusion
	StorageCRUSH   Confusion
	StorageProxion Confusion
	FuncUSCHunt    Confusion
	FuncProxion    Confusion
}

// Table2 runs USCHunt, CRUSH and Proxion over the labeled accuracy corpus
// and scores their storage- and function-collision detections against the
// ground truth.
func Table2(corpus *dataset.AccuracyCorpus) Table2Result {
	var res Table2Result

	det := proxion.NewDetector(corpus.Chain)
	hunt := uschunt.New(corpus.Registry)
	cr := crush.New(corpus.Chain)

	// Storage collisions.
	for _, pc := range corpus.StoragePairs {
		// USCHunt: name/order comparison over published layouts, gated on
		// its own (source-level) proxy detection.
		huntHit := hunt.DetectProxy(pc.Proxy).Detected &&
			len(hunt.StorageCollisions(pc.Proxy, pc.Logic)) > 0
		res.StorageUSCHunt.record(huntHit, pc.Truth)

		// CRUSH: the pair must be visible in transaction traces; then the
		// slicing engine decides.
		crushHit := false
		if cr.IsProxy(pc.Proxy) {
			cols, _ := cr.StorageCollisions(pc.Proxy, pc.Logic)
			crushHit = anyExploitable(cols)
		}
		res.StorageCRUSH.record(crushHit, pc.Truth)

		// Proxion: emulation-based proxy identification, then the same
		// engine.
		proxionHit := false
		if rep := det.Check(pc.Proxy); rep.IsProxy {
			pa := det.AnalyzePair(pc.Proxy, pc.Logic, corpus.Registry)
			proxionHit = anyExploitableCols(pa.Storage)
		}
		res.StorageProxion.record(proxionHit, pc.Truth)
	}

	// Function collisions (CRUSH does not detect them).
	for _, pc := range corpus.FunctionPairs {
		huntHit := len(hunt.FunctionCollisions(pc.Proxy, pc.Logic)) > 0
		res.FuncUSCHunt.record(huntHit, pc.Truth)

		proxionHit := false
		if rep := det.Check(pc.Proxy); rep.IsProxy {
			pa := det.AnalyzePair(pc.Proxy, pc.Logic, corpus.Registry)
			proxionHit = len(pa.Functions) > 0
		}
		res.FuncProxion.record(proxionHit, pc.Truth)
	}
	return res
}

func anyExploitable(cols []proxion.StorageCollision) bool {
	return anyExploitableCols(cols)
}

func anyExploitableCols(cols []proxion.StorageCollision) bool {
	for _, c := range cols {
		if c.Exploitable {
			return true
		}
	}
	return false
}

// Table renders the result next to the paper's reported numbers.
func (r Table2Result) Table() *Table {
	t := &Table{
		ID:     "Table 2",
		Title:  "Collision detection accuracy (measured vs paper)",
		Header: []string{"task", "tool", "TP", "FP", "TN", "FN", "accuracy", "paper"},
	}
	row := func(task, tool string, c Confusion, paper string) {
		t.Rows = append(t.Rows, []string{
			task, tool, itoa(c.TP), itoa(c.FP), itoa(c.TN), itoa(c.FN),
			pct(c.TP+c.TN, c.TP+c.FP+c.TN+c.FN), paper,
		})
	}
	row("storage", "USCHunt", r.StorageUSCHunt, "33/83/79/11 = 54.4%")
	row("storage", "CRUSH", r.StorageCRUSH, "26/76/86/18 = 54.4%")
	row("storage", "Proxion", r.StorageProxion, "27/28/134/17 = 78.2%")
	row("function", "USCHunt", r.FuncUSCHunt, "299/1/0/261 = 53.3%")
	row("function", "Proxion", r.FuncProxion, "557/0/1/3 = 99.5%")
	t.Notes = append(t.Notes,
		"corpus case-family sizes follow Section 6.3; each tool genuinely runs its analysis",
		"CRUSH does not detect function collisions (Table 1)")
	return t
}
