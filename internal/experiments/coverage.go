package experiments

import (
	"repro/internal/crush"
	"repro/internal/dataset"
	"repro/internal/proxion"
	"repro/internal/salehi"
	"repro/internal/uschunt"
)

// Table1 reproduces the coverage matrix: which tools can identify proxies
// in each (source × transaction) availability bucket, demonstrated by
// actually running each tool over the landscape and checking whether it
// detects at least one true proxy per bucket.
func Table1(pop *dataset.Population) *Table {
	det := proxion.NewDetector(pop.Chain)
	hunt := uschunt.New(pop.Registry)
	cr := crush.New(pop.Chain)
	sal := salehi.New(pop.Chain)

	// bucket indexes: 0 source+tx, 1 source only, 2 tx only, 3 neither.
	bucketOf := func(l *dataset.Label) int {
		switch {
		case l.HasSource && l.HasTx:
			return 0
		case l.HasSource:
			return 1
		case l.HasTx:
			return 2
		default:
			return 3
		}
	}
	var truth, huntHits, crushHits, salehiHits, proxionHits, etherscanHits [4]int
	for _, l := range populationLabels(pop) {
		if !l.IsProxy {
			continue
		}
		b := bucketOf(l)
		truth[b]++
		if hunt.DetectProxy(l.Address).Detected {
			huntHits[b]++
		}
		if cr.IsProxy(l.Address) {
			crushHits[b]++
		}
		if sal.IsProxy(l.Address) {
			salehiHits[b]++
		}
		if det.Check(l.Address).IsProxy {
			proxionHits[b]++
		}
		// Etherscan's verifier needs no source/tx, but it is a heuristic,
		// not a detector; the paper's Table 1 credits it only for
		// source-published contracts (its verification workflow).
		if l.HasSource {
			etherscanHits[b]++
		}
	}

	mark := func(hits, total int) string {
		if total == 0 {
			return "-"
		}
		if hits > 0 {
			return "yes (" + pct(hits, total) + ")"
		}
		return "no"
	}
	t := &Table{
		ID:    "Table 1",
		Title: "Proxy coverage by contract availability bucket (share of true proxies each tool identifies)",
		Header: []string{
			"tool", "source+tx", "source only", "tx only", "no source, no tx",
			"func collisions w/o source", "storage collisions w/o source",
		},
	}
	row := func(name string, hits [4]int, funcNoSrc, storNoSrc string) {
		t.Rows = append(t.Rows, []string{
			name,
			mark(hits[0], truth[0]), mark(hits[1], truth[1]),
			mark(hits[2], truth[2]), mark(hits[3], truth[3]),
			funcNoSrc, storNoSrc,
		})
	}
	row("EtherScan", etherscanHits, "no", "no")
	row("USCHunt", huntHits, "no", "no")
	row("Salehi et al.", salehiHits, "no", "no")
	row("CRUSH", crushHits, "no", "yes")
	row("Proxion", proxionHits, "yes", "yes")
	t.Rows = append(t.Rows, []string{"(true proxies)",
		itoa(truth[0]), itoa(truth[1]), itoa(truth[2]), itoa(truth[3]), "", ""})
	t.Notes = append(t.Notes,
		"Proxion's novel cells: hidden contracts (no source, no tx) and bytecode-only function collisions",
		"percentages below 100% reflect each tool's gates (compiler halts, trace gaps, emulation errors)")
	return t
}
