package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/proxion"
)

// TestEveryExperimentProducesSaneTables drives each experiment over one
// small landscape and checks its structural invariants — the cross-checks
// a reviewer would do on the rendered tables.
func TestEveryExperimentProducesSaneTables(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 17, Contracts: 900})
	det := proxion.NewDetector(pop.Chain)
	res := det.AnalyzeAll(pop.Registry)

	t.Run("performance", func(t *testing.T) {
		table := experiments.Performance(pop)
		if len(table.Rows) != 5 {
			t.Fatalf("rows = %d", len(table.Rows))
		}
		// Throughput must be positive and the latency parseable.
		if !strings.Contains(table.Rows[0][0], "latency") {
			t.Errorf("row 0 = %v", table.Rows[0])
		}
	})

	t.Run("effectiveness-sanctuary", func(t *testing.T) {
		table := experiments.EffectivenessSanctuary(pop)
		// Proxion must identify at least as many proxies as USCHunt on the
		// all-source subset (row 2: "proxies identified").
		hunt := atoiOrFail(t, table.Rows[2][1])
		prox := atoiOrFail(t, table.Rows[2][2])
		if prox < hunt {
			t.Errorf("Proxion %d < USCHunt %d — the paper's ordering is violated", prox, hunt)
		}
	})

	t.Run("effectiveness-crush", func(t *testing.T) {
		table := experiments.EffectivenessCrush(pop)
		crushOnly := atoiOrFail(t, table.Rows[1][1])
		libFPs := atoiOrFail(t, table.Rows[2][1])
		hidden := atoiOrFail(t, table.Rows[3][1])
		if libFPs > crushOnly {
			t.Errorf("library FPs %d exceed CRUSH-only %d", libFPs, crushOnly)
		}
		if hidden == 0 {
			t.Error("no hidden proxies found by Proxion alone")
		}
	})

	t.Run("runtime-errors", func(t *testing.T) {
		table := experiments.RuntimeErrors(pop)
		if len(table.Rows) < 3 {
			t.Fatalf("rows = %d", len(table.Rows))
		}
		errs := strings.Split(table.Rows[2][1], " ")[0]
		if atoiOrFail(t, errs) == 0 {
			t.Error("expected injected broken contracts to produce emulation errors")
		}
	})

	t.Run("hidden-proxies", func(t *testing.T) {
		table := experiments.HiddenProxies(pop, res)
		total := atoiOrFail(t, table.Rows[0][1])
		if total != len(res.Proxies()) {
			t.Errorf("proxies = %s, want %d", table.Rows[0][1], len(res.Proxies()))
		}
	})

	t.Run("etherscan-verifier", func(t *testing.T) {
		table := experiments.EtherscanVerifierFPs(pop)
		fp := atoiOrFail(t, table.Rows[0][1])
		fn := atoiOrFail(t, table.Rows[0][3])
		if fp == 0 {
			t.Error("the heuristic should produce library-caller false positives")
		}
		if fn > fp {
			t.Errorf("heuristic FN %d > FP %d — wrong failure shape", fn, fp)
		}
	})

	t.Run("figure4", func(t *testing.T) {
		table := experiments.Figure4(pop, res)
		last := table.Rows[len(table.Rows)-1]
		if atoiOrFail(t, last[5]) != len(res.Proxies()) {
			t.Errorf("final pair total %s != proxies %d", last[5], len(res.Proxies()))
		}
	})

	t.Run("figure6", func(t *testing.T) {
		table := experiments.Figure6(pop, det, res)
		total := 0
		for _, row := range table.Rows {
			total += atoiOrFail(t, row[1])
		}
		if total != len(res.Proxies()) {
			t.Errorf("histogram sums to %d, want %d proxies", total, len(res.Proxies()))
		}
	})

	t.Run("upgrade-authority", func(t *testing.T) {
		table := experiments.UpgradeAuthority(pop)
		visible := atoiOrFail(t, table.Rows[0][1])
		frozen := atoiOrFail(t, table.Rows[1][1])
		if visible == 0 || frozen == 0 {
			t.Errorf("survey empty: visible=%d frozen=%d", visible, frozen)
		}
		if frozen > visible {
			t.Errorf("frozen %d > visible %d", frozen, visible)
		}
	})

	t.Run("extension-diamond", func(t *testing.T) {
		table := experiments.ExtensionDiamond(pop)
		if len(table.Rows) != 4 {
			t.Fatalf("rows = %d", len(table.Rows))
		}
		base := table.Rows[2][1]
		if !strings.HasPrefix(base, "0 ") {
			t.Errorf("base pipeline detected diamonds: %q", base)
		}
	})
}

// TestAblationsProduceExpectedOrderings drives the five design-choice
// ablations and checks the direction of each result.
func TestAblationsProduceExpectedOrderings(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 19, Contracts: 700})

	t.Run("disasm-filter", func(t *testing.T) {
		table := experiments.AblationDisasmFilter(pop)
		rejected := strings.Split(table.Rows[2][1], " ")[0]
		if atoiOrFail(t, rejected) == 0 {
			t.Error("filter rejected nothing; population must contain non-delegating contracts")
		}
	})

	t.Run("selector-choice", func(t *testing.T) {
		table := experiments.AblationSelectorChoice(pop)
		crafted := atoiOrFail(t, table.Rows[0][1])
		fixed := atoiOrFail(t, table.Rows[1][1])
		if fixed >= crafted {
			t.Errorf("fixed probe (%d) should miss proxies the crafted probe finds (%d)", fixed, crafted)
		}
	})

	t.Run("history-search", func(t *testing.T) {
		table := experiments.AblationHistorySearch(pop)
		binary := atoiOrFail(t, table.Rows[0][1])
		naive := atoiOrFail(t, table.Rows[1][1])
		if naive < binary*100 {
			t.Errorf("naive scan (%d) should dwarf binary search (%d)", naive, binary)
		}
	})

	t.Run("naive-push4", func(t *testing.T) {
		table := experiments.AblationNaivePush4(pop)
		if atoiOrFail(t, table.Rows[2][1]) == 0 {
			t.Error("no spurious signatures avoided; decoy constants missing from landscape")
		}
	})

	t.Run("dedup", func(t *testing.T) {
		table := experiments.AblationDedup(pop)
		if len(table.Rows) != 2 {
			t.Fatalf("rows = %d", len(table.Rows))
		}
	})
}

func TestTable2RenderIncludesPaperColumn(t *testing.T) {
	var res experiments.Table2Result
	res.StorageProxion = experiments.Confusion{TP: 1, TN: 1}
	table := res.Table()
	out := table.Render()
	if !strings.Contains(out, "paper") || !strings.Contains(out, "78.2%") {
		t.Errorf("render missing paper reference:\n%s", out)
	}
	if res.StorageProxion.Accuracy() != 1.0 {
		t.Errorf("accuracy = %f", res.StorageProxion.Accuracy())
	}
}
