package experiments

import (
	"repro/internal/chain"
	"repro/internal/dataset"
	"repro/internal/proxion"
	"repro/internal/salehi"
)

// ExtensionDiamond measures the Section 8.2 future-work implementation:
// history-assisted detection of EIP-2535 diamonds. The base pipeline misses
// every diamond (random probe data cannot hit a registered facet); the
// extension recovers those with past transactions by reusing observed
// selectors as probes.
func ExtensionDiamond(pop *dataset.Population) *Table {
	det := proxion.NewDetector(pop.Chain)

	var diamonds, withTx, baseHits, extHits int
	for _, l := range populationLabels(pop) {
		if l.Kind != dataset.KindDiamond {
			continue
		}
		diamonds++
		if l.HasTx {
			withTx++
		}
		if det.Check(l.Address).IsProxy {
			baseHits++
		}
		if rep := det.CheckWithHistory(l.Address); rep.IsProxy {
			extHits++
			if rep.Standard != proxion.StandardEIP2535 {
				// Mis-classification would silently corrupt Table 4.
				extHits--
			}
		}
	}
	t := &Table{
		ID:     "Section 8.2",
		Title:  "Future work implemented: history-assisted diamond detection",
		Header: []string{"metric", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"diamonds deployed", itoa(diamonds)},
		[]string{"  with past transactions", itoa(withTx)},
		[]string{"detected by base pipeline", itoa(baseHits) + " (the paper's documented miss)"},
		[]string{"detected with history-assisted probes", itoa(extHits)},
	)
	t.Notes = append(t.Notes,
		"transaction-less diamonds remain out of reach: there is no selector to mine")
	return t
}

// UpgradeAuthority surveys the landscape with the Salehi-style analysis:
// of the proxies visible to transaction replay, how many are upgradeable,
// who controls them, and how many upgrade paths are entirely unprotected.
// This reproduces the related work's research question (Section 9.1) on the
// same substrate, for comparison with Proxion's coverage.
func UpgradeAuthority(pop *dataset.Population) *Table {
	sal := salehi.New(pop.Chain)
	det := proxion.NewDetector(pop.Chain)

	var visible, upgradeable, guarded, unprotected, frozen int
	for _, l := range populationLabels(pop) {
		if !l.IsProxy || !sal.IsProxy(l.Address) {
			continue
		}
		rep := det.Check(l.Address)
		if !rep.IsProxy {
			continue
		}
		visible++
		auth, ok := sal.WhoCanUpgrade(l.Address, rep.ImplSlot)
		if !ok {
			continue
		}
		switch {
		case !auth.Upgradeable:
			frozen++
		case auth.Unprotected:
			upgradeable++
			unprotected++
		default:
			upgradeable++
			guarded++
		}
	}
	t := &Table{
		ID:     "Section 9.1",
		Title:  "Salehi-style upgrade-authority survey (replay-visible proxies)",
		Header: []string{"metric", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"proxies visible to replay", itoa(visible)},
		[]string{"not upgradeable (fixed logic)", itoa(frozen)},
		[]string{"upgradeable, owner-gated", itoa(guarded)},
		[]string{"upgradeable, UNPROTECTED", itoa(unprotected)},
	)
	t.Notes = append(t.Notes,
		"transaction-less proxies are invisible here; Proxion's coverage gap over this tool")
	return t
}

// network is one simulated EVM chain in the multi-chain sweep.
type network struct {
	cfg  chain.Config
	seed int64
	size int
}

// MultiChain implements the paper's other future-work direction (Section
// 8.2): applying Proxion beyond Ethereum. Because proxy EIPs and compiler
// idioms are identical on every EVM network, the analyzer runs unchanged;
// each simulated chain gets its own seed and scale to mimic differing
// ecosystem sizes.
func MultiChain(baseSeed int64, perChain int) *Table {
	networks := []network{
		{chain.Config{Name: "ethereum", ChainID: 1, BlockInterval: 12, GenesisTime: 1_438_269_973}, baseSeed, perChain},
		{chain.Config{Name: "arbitrum", ChainID: 42161, BlockInterval: 1, GenesisTime: 1_622_243_344}, baseSeed + 1, perChain / 2},
		{chain.Config{Name: "bsc", ChainID: 56, BlockInterval: 3, GenesisTime: 1_598_671_449}, baseSeed + 2, perChain},
		{chain.Config{Name: "polygon", ChainID: 137, BlockInterval: 2, GenesisTime: 1_590_824_836}, baseSeed + 3, perChain * 3 / 4},
		{chain.Config{Name: "optimism", ChainID: 10, BlockInterval: 2, GenesisTime: 1_636_665_386}, baseSeed + 4, perChain / 3},
	}
	t := &Table{
		ID:     "Section 8.2 (multi-chain)",
		Title:  "Future work implemented: the same analyzer across EVM networks",
		Header: []string{"network", "chain id", "contracts", "proxies", "share", "verified exploits"},
	}
	for _, n := range networks {
		pop := dataset.Generate(dataset.Config{Seed: n.seed, Contracts: n.size, Network: n.cfg})
		det := proxion.NewDetector(pop.Chain)
		res := det.AnalyzeAll(pop.Registry)
		s := proxion.Summarize(res)
		t.Rows = append(t.Rows, []string{
			n.cfg.Name,
			itoa(int(n.cfg.ChainID)),
			itoa(s.Contracts),
			itoa(s.Proxies),
			pct(s.Proxies, s.Contracts),
			itoa(s.VerifiedExploits),
		})
	}
	t.Notes = append(t.Notes,
		"chain id flows through the CHAINID opcode during emulation; no analyzer changes were needed")
	return t
}
