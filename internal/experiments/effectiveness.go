package experiments

import (
	"sort"

	"repro/internal/crush"
	"repro/internal/dataset"
	"repro/internal/etherscan"
	"repro/internal/proxion"
	"repro/internal/uschunt"
)

// EffectivenessSanctuary reproduces the Smart-Contract-Sanctuary comparison
// (Section 6.2): on an all-source dataset, Proxion identifies more proxies
// than USCHunt, whose compilation halts lose ~30% of contracts, and finds
// function collisions USCHunt misses.
func EffectivenessSanctuary(pop *dataset.Population) *Table {
	det := proxion.NewDetector(pop.Chain)
	hunt := uschunt.New(pop.Registry)

	var examined, huntProxies, huntHalts, proxionProxies, proxionErrs int
	var huntFuncCollisions, proxionFuncCollisions int

	for _, l := range populationLabels(pop) {
		if !l.HasSource {
			continue // the Sanctuary dataset only holds verified contracts
		}
		examined++
		verdict := hunt.DetectProxy(l.Address)
		if verdict.Halted {
			huntHalts++
		}
		if verdict.Detected {
			huntProxies++
			if len(hunt.FunctionCollisions(l.Address, l.Logic)) > 0 {
				huntFuncCollisions++
			}
		}
		rep := det.Check(l.Address)
		if rep.EmulationErr != nil {
			proxionErrs++
		}
		if rep.IsProxy {
			proxionProxies++
			pa := det.AnalyzePair(rep.Address, rep.Logic, pop.Registry)
			if len(pa.Functions) > 0 {
				proxionFuncCollisions++
			}
		}
	}

	t := &Table{
		ID:     "Section 6.2a",
		Title:  "Effectiveness on the Sanctuary-like (all-source) subset",
		Header: []string{"metric", "USCHunt", "Proxion", "paper"},
	}
	t.Rows = append(t.Rows,
		[]string{"contracts examined", itoa(examined), itoa(examined), "329,764"},
		[]string{"analysis failures", itoa(huntHalts) + " (" + pct(huntHalts, examined) + ")",
			itoa(proxionErrs) + " (" + pct(proxionErrs, examined) + ")", "~30% vs ~1.2%"},
		[]string{"proxies identified", itoa(huntProxies), itoa(proxionProxies), "29,023 vs 35,924"},
		[]string{"pairs with function collisions", itoa(huntFuncCollisions), itoa(proxionFuncCollisions),
			"Proxion finds 257 collisions USCHunt misses"},
	)
	t.Notes = append(t.Notes,
		"who-wins shape: Proxion > USCHunt on proxies found and collisions, far fewer failures")
	return t
}

// EffectivenessCrush reproduces the CRUSH-dataset comparison (Section 6.2):
// CRUSH over-counts by including library callers and under-counts by
// missing transaction-less proxies; Proxion uncovers the hidden ones and
// additional verified storage collisions.
func EffectivenessCrush(pop *dataset.Population) *Table {
	det := proxion.NewDetector(pop.Chain)
	cr := crush.New(pop.Chain)

	crushProxySet := make(map[string]bool)
	for _, pair := range cr.IdentifyProxies() {
		crushProxySet[pair.Proxy.Hex()] = true
	}

	var proxionProxies, crushOnly, proxionOnly, libraryFPs int
	var proxionVerified, crushVerified int
	for _, l := range populationLabels(pop) {
		rep := det.Check(l.Address)
		crushSays := crushProxySet[l.Address.Hex()]
		if rep.IsProxy {
			proxionProxies++
			pa := det.AnalyzePair(rep.Address, rep.Logic, pop.Registry)
			if pa.ExploitVerified {
				proxionVerified++
			}
		}
		if crushSays && !rep.IsProxy {
			crushOnly++
			if l.Kind == dataset.KindLibraryUser {
				libraryFPs++
			}
		}
		if rep.IsProxy && !crushSays {
			proxionOnly++
		}
		if crushSays {
			if _, verified := cr.StorageCollisions(l.Address, l.Logic); verified {
				crushVerified++
			}
		}
	}

	t := &Table{
		ID:     "Section 6.2b",
		Title:  "Effectiveness on the CRUSH-like (mixed) dataset",
		Header: []string{"metric", "measured", "paper"},
	}
	t.Rows = append(t.Rows,
		[]string{"proxies found by Proxion", itoa(proxionProxies), "13,042,496 (of 53.6M)"},
		[]string{"CRUSH-only classifications (library callers etc.)", itoa(crushOnly), "~1.2M more than Proxion"},
		[]string{"  of which library-call false positives", itoa(libraryFPs), "the paper's stated cause"},
		[]string{"hidden proxies only Proxion finds (no tx)", itoa(proxionOnly), "1,667,905"},
		[]string{"verified storage-collision pairs (Proxion)", itoa(proxionVerified), "CRUSH 956 + 1,480 new by Proxion"},
		[]string{"verified storage-collision pairs (CRUSH)", itoa(crushVerified), "956"},
	)
	t.Notes = append(t.Notes,
		"shape: CRUSH over-includes library callers; Proxion alone sees transaction-less proxies")
	return t
}

// RuntimeErrors reproduces the Section 7.1 robustness number: the share of
// alive contracts the emulation analyzes without terminal EVM errors
// (paper: 95.1%).
func RuntimeErrors(pop *dataset.Population) *Table {
	det := proxion.NewDetector(pop.Chain)
	var total, errs int
	errKinds := make(map[string]int)
	for _, l := range populationLabels(pop) {
		total++
		rep := det.Check(l.Address)
		if rep.EmulationErr != nil {
			errs++
			errKinds[rep.EmulationErr.Error()]++
		}
	}
	t := &Table{
		ID:     "Section 7.1",
		Title:  "Emulation robustness over the landscape",
		Header: []string{"metric", "measured", "paper"},
	}
	t.Rows = append(t.Rows,
		[]string{"contracts analyzed", itoa(total), "36M"},
		[]string{"clean analyses", pct(total-errs, total), "95.1%"},
		[]string{"terminal EVM errors", itoa(errs) + " (" + pct(errs, total) + ")", "4.9%"},
	)
	msgs := make([]string, 0, len(errKinds))
	for msg := range errKinds {
		msgs = append(msgs, msg)
	}
	sort.Strings(msgs)
	for _, msg := range msgs {
		t.Rows = append(t.Rows, []string{"  " + msg, itoa(errKinds[msg]), ""})
	}
	return t
}

// EtherscanVerifierFPs quantifies the explorer heuristic's imprecision
// (Section 9.1): DELEGATECALL presence vs the ground truth.
func EtherscanVerifierFPs(pop *dataset.Population) *Table {
	var conf Confusion
	for _, l := range populationLabels(pop) {
		code := pop.Chain.Code(l.Address)
		conf.record(etherscan.VerifierIsProxy(code), l.IsProxy)
	}
	t := &Table{
		ID:     "Section 9.1",
		Title:  "Etherscan verifier heuristic (DELEGATECALL presence) vs ground truth",
		Header: []string{"TP", "FP", "TN", "FN", "accuracy"},
	}
	t.Rows = append(t.Rows, []string{
		itoa(conf.TP), itoa(conf.FP), itoa(conf.TN), itoa(conf.FN),
		pct(conf.TP+conf.TN, conf.TP+conf.FP+conf.TN+conf.FN),
	})
	t.Notes = append(t.Notes, "the false positives are library callers, as Etherscan acknowledges")
	return t
}

// HiddenProxies counts detector-confirmed proxies with neither source nor
// transactions — the paper's 1.5M headline.
func HiddenProxies(pop *dataset.Population, res *proxion.Result) *Table {
	a := NewLandscape(pop.Chain, pop.Registry, nil)
	a.replay(pop, res)
	return a.HiddenProxies()
}
