package experiments

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/proxion"
)

// Performance reproduces the Section 6.1 throughput measurements: time per
// proxy check, contracts per second, archive calls per proxy for logic
// history, and per-pair collision timings.
func Performance(pop *dataset.Population) *Table {
	det := proxion.NewDetector(pop.Chain)
	labels := populationLabels(pop)

	// Proxy checks over the whole population.
	start := time.Now()
	var proxies []proxion.Report
	for _, l := range labels {
		if rep := det.Check(l.Address); rep.IsProxy {
			proxies = append(proxies, rep)
		}
	}
	checkDur := time.Since(start)
	perCheck := checkDur / time.Duration(len(labels))
	perSec := float64(len(labels)) / checkDur.Seconds()

	// Logic-history recovery: average getStorageAt calls per storage proxy.
	pop.Chain.ResetAPICalls()
	storageProxies := 0
	for _, rep := range proxies {
		if rep.Target == proxion.TargetStorage {
			det.LogicHistory(rep.Address, rep.ImplSlot)
			storageProxies++
		}
	}
	avgCalls := 0.0
	if storageProxies > 0 {
		avgCalls = float64(pop.Chain.APICalls()) / float64(storageProxies)
	}

	// Function-collision timing per pair.
	start = time.Now()
	funcPairs := 0
	for _, rep := range proxies {
		det.AnalyzePair(rep.Address, rep.Logic, pop.Registry)
		funcPairs++
	}
	pairDur := time.Since(start)
	perPair := time.Duration(0)
	if funcPairs > 0 {
		perPair = pairDur / time.Duration(funcPairs)
	}

	t := &Table{
		ID:     "Section 6.1",
		Title:  "Performance on a commodity machine",
		Header: []string{"metric", "measured", "paper"},
	}
	t.Rows = append(t.Rows,
		[]string{"proxy check latency", perCheck.String(), "6.4 ms"},
		[]string{"proxy checks per second", fmt.Sprintf("%.1f", perSec), "156.3"},
		[]string{"getStorageAt calls per proxy (Algorithm 1)", fmt.Sprintf("%.1f", avgCalls), "26"},
		[]string{"collision analysis per pair", perPair.String(), "6.7 ms (function)"},
		[]string{"contracts analyzed", itoa(len(labels)), "36M in ~65h"},
	)
	t.Notes = append(t.Notes,
		"absolute times differ from the paper's hardware; the throughput order of magnitude is the target",
		fmt.Sprintf("chain height %d blocks (mainnet: ~18.5M, scaled)", pop.Chain.CurrentBlock()))
	return t
}

// AblationDisasmFilter quantifies design choice 1: the cheap DELEGATECALL
// opcode scan before emulation.
func AblationDisasmFilter(pop *dataset.Population) *Table {
	det := proxion.NewDetector(pop.Chain)
	labels := populationLabels(pop)

	start := time.Now()
	for _, l := range labels {
		det.Check(l.Address)
	}
	withFilter := time.Since(start)

	// Filter-only pass, to show what each rejection saves.
	start = time.Now()
	rejected := 0
	for _, l := range labels {
		code := pop.Chain.Code(l.Address)
		if !disasm.ContainsOp(code, 0xf4) {
			rejected++
		}
	}
	filterOnly := time.Since(start)

	t := &Table{
		ID:     "Ablation 1",
		Title:  "Two-step detection: disassembly filter before emulation",
		Header: []string{"metric", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"full pipeline over population", withFilter.String()},
		[]string{"filter-only pass", filterOnly.String()},
		[]string{"contracts rejected without emulation", fmt.Sprintf("%d / %d (%s)",
			rejected, len(labels), pct(rejected, len(labels)))},
	)
	t.Notes = append(t.Notes,
		"every rejected contract saves a full EVM emulation; the filter pass is orders of magnitude cheaper")
	return t
}

// AblationSelectorChoice quantifies design choice 2: crafting call data
// that avoids every PUSH4 candidate. The ablation probes every contract
// with a fixed, frequently-implemented selector instead.
func AblationSelectorChoice(pop *dataset.Population) *Table {
	det := proxion.NewDetector(pop.Chain)

	// proxyType() is implemented by the OwnableDelegateProxy clones: a
	// fixed probe using it executes that function instead of the fallback.
	fixed := make([]byte, 36)
	sel := etypes.Keccak([]byte("proxyType()"))
	copy(fixed, sel[:4])

	var truth, detectedCrafted, detectedFixed int
	for _, l := range populationLabels(pop) {
		if !l.IsProxy {
			continue
		}
		truth++
		if det.Check(l.Address).IsProxy {
			detectedCrafted++
		}
		if det.CheckWithCallData(l.Address, fixed).IsProxy {
			detectedFixed++
		}
	}
	t := &Table{
		ID:     "Ablation 2",
		Title:  "Crafted (PUSH4-avoiding) call data vs a fixed probe selector",
		Header: []string{"probe", "true proxies detected", "recall"},
	}
	t.Rows = append(t.Rows,
		[]string{"crafted (Proxion)", itoa(detectedCrafted), pct(detectedCrafted, truth)},
		[]string{"fixed proxyType()", itoa(detectedFixed), pct(detectedFixed, truth)},
	)
	t.Notes = append(t.Notes,
		"a fixed selector silently skips every proxy that implements it: the fallback is never reached")
	return t
}

// AblationHistorySearch quantifies design choice 3: Algorithm 1's binary
// search vs querying every block.
func AblationHistorySearch(pop *dataset.Population) *Table {
	det := proxion.NewDetector(pop.Chain)
	var proxies []proxion.Report
	for _, l := range populationLabels(pop) {
		if !l.IsProxy || l.ImplSlot == (etypes.Hash{}) {
			continue
		}
		if rep := det.Check(l.Address); rep.IsProxy && rep.Target == proxion.TargetStorage {
			proxies = append(proxies, rep)
			if len(proxies) >= 25 {
				break
			}
		}
	}
	pop.Chain.ResetAPICalls()
	for _, rep := range proxies {
		det.LogicHistory(rep.Address, rep.ImplSlot)
	}
	binaryCalls := pop.Chain.APICalls()

	pop.Chain.ResetAPICalls()
	for _, rep := range proxies {
		det.NaiveLogicHistory(rep.Address, rep.ImplSlot)
	}
	naiveCalls := pop.Chain.APICalls()

	t := &Table{
		ID:     "Ablation 3",
		Title:  "Algorithm 1 binary search vs naive per-block archive scan",
		Header: []string{"method", "getStorageAt calls", "per proxy"},
	}
	n := len(proxies)
	t.Rows = append(t.Rows,
		[]string{"binary search (Algorithm 1)", fmt.Sprintf("%d", binaryCalls),
			fmt.Sprintf("%.1f", float64(binaryCalls)/float64(max(n, 1)))},
		[]string{"naive scan", fmt.Sprintf("%d", naiveCalls),
			fmt.Sprintf("%.1f", float64(naiveCalls)/float64(max(n, 1)))},
	)
	t.Notes = append(t.Notes,
		"the paper reports ~26 calls per proxy against 15M blocks vs millions for the naive scan")
	return t
}

// AblationNaivePush4 quantifies design choice 4: dispatcher-pattern
// selector extraction vs treating every PUSH4 immediate as a signature.
func AblationNaivePush4(pop *dataset.Population) *Table {
	var contractsWithData, naiveOver, total int
	for _, l := range populationLabels(pop) {
		code := pop.Chain.Code(l.Address)
		naive := len(disasm.Push4Candidates(code))
		precise := len(disasm.DispatcherSelectors(code))
		if naive == 0 {
			continue
		}
		total++
		if naive > precise {
			contractsWithData++
			naiveOver += naive - precise
		}
	}
	t := &Table{
		ID:     "Ablation 4",
		Title:  "Dispatcher-pattern signatures vs naive any-PUSH4 extraction",
		Header: []string{"metric", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"contracts with PUSH4 immediates", itoa(total)},
		[]string{"contracts where naive over-extracts", itoa(contractsWithData)},
		[]string{"spurious signatures avoided", itoa(naiveOver)},
	)
	t.Notes = append(t.Notes,
		"each spurious 4-byte value risks a false function collision (Section 3.1)")
	return t
}

// AblationDedup quantifies design choice 5: bytecode-hash deduplication of
// collision analyses.
func AblationDedup(pop *dataset.Population) *Table {
	res := proxion.NewDetector(pop.Chain).AnalyzeAll(pop.Registry)

	// With dedup: one shared detector whose caches persist across pairs.
	shared := proxion.NewDetector(pop.Chain)
	start := time.Now()
	for _, pa := range res.Pairs {
		shared.AnalyzePair(pa.Proxy, pa.Logic, pop.Registry)
	}
	withCache := time.Since(start)

	// Without: a fresh detector per pair (cold caches every time).
	start = time.Now()
	for _, pa := range res.Pairs {
		proxion.NewDetector(pop.Chain).AnalyzePair(pa.Proxy, pa.Logic, pop.Registry)
	}
	withoutCache := time.Since(start)

	t := &Table{
		ID:     "Ablation 5",
		Title:  "Bytecode-hash deduplication of collision analysis",
		Header: []string{"mode", "total time", "per pair"},
	}
	n := len(res.Pairs)
	t.Rows = append(t.Rows,
		[]string{"cached by code hash", withCache.String(), (withCache / time.Duration(max(n, 1))).String()},
		[]string{"cold per pair", withoutCache.String(), (withoutCache / time.Duration(max(n, 1))).String()},
	)
	t.Notes = append(t.Notes,
		"the paper's 48-day storage sweep is only feasible because duplicates are analyzed once (Section 6.1)")
	return t
}
