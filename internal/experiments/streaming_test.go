package experiments_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/etypes"
	"repro/internal/experiments"
	"repro/internal/proxion"
)

// streamCfg is shared by the parity tests below; generation is
// deterministic, so the batch and streaming corpora are identical.
var streamCfg = dataset.Config{Seed: 11, Contracts: 900}

// batchSide materializes the reference Population/Result pair the batch
// table wrappers consume.
func batchSide(t *testing.T) (*dataset.Population, *proxion.Detector, *proxion.Result) {
	t.Helper()
	pop := dataset.Generate(streamCfg)
	det := proxion.NewDetector(pop.Chain)
	return pop, det, det.AnalyzeAll(pop.Registry)
}

// TestStreamedCorpusLandscapeMatchesBatch is the deterministic parity
// check for the aggregate plumbing: the corpus is streamed to completion
// first (so every scheduled upgrade has landed, exactly the state the
// batch run sees), then analyzed through AnalyzeStream with the items
// zipped back to their labels and folded into a Landscape. Every table
// must match the batch wrappers byte for byte.
func TestStreamedCorpusLandscapeMatchesBatch(t *testing.T) {
	pop, det, res := batchSide(t)

	s := dataset.GenerateStream(dataset.StreamConfig{Config: streamCfg})
	var labels []*dataset.Label
	for l := range s.C {
		labels = append(labels, l)
	}

	sdet := proxion.NewDetector(s.Chain)
	agg := experiments.NewLandscape(s.Chain, s.Registry, sdet)
	sb := proxion.NewSummaryBuilder()
	addrs := make([]etypes.Address, len(labels))
	for i, l := range labels {
		addrs[i] = l.Address
	}
	sink := proxion.SinkFunc(func(it proxion.Item) {
		agg.Observe(labels[it.Index], it)
		sb.Emit(it)
	})
	sdet.AnalyzeStream(proxion.SliceSource(addrs), s.Registry, sink, proxion.AnalyzeOptions{})

	assertTableEqual(t, "Figure 2", agg.Figure2(), experiments.Figure2(pop))
	assertTableEqual(t, "Figure 4", agg.Figure4(), experiments.Figure4(pop, res))
	assertTableEqual(t, "Table 3", agg.Table3(), experiments.Table3(pop, det, res))
	assertTableEqual(t, "Figure 5", agg.Figure5(), experiments.Figure5(pop, res))
	assertTableEqual(t, "Table 4", agg.Table4(), experiments.Table4(res))
	assertTableEqual(t, "Figure 6", agg.Figure6(), experiments.Figure6(pop, det, res))
	assertTableEqual(t, "HiddenProxies", agg.HiddenProxies(), experiments.HiddenProxies(pop, res))

	// The incremental summary matches too — except Contracts: the stream
	// feeds every label address, including destroyed ones the batch run's
	// alive-only enumeration skips. Those yield empty no-code reports that
	// change no other counter.
	got, want := sb.Summary(nil), proxion.Summarize(res)
	want.Pipeline = nil
	if got.Contracts != len(labels) {
		t.Errorf("streaming summary saw %d contracts, want %d", got.Contracts, len(labels))
	}
	got.Contracts = want.Contracts
	if !reflect.DeepEqual(got, want) {
		t.Errorf("streaming summary diverges:\nstream: %+v\nbatch:  %+v", got, want)
	}
}

// TestLiveStreamingLandscapeInvariants runs the fully concurrent path —
// the generator stream feeding the engine while deployment continues —
// and checks the outputs that cannot depend on upgrade timing. A proxy
// that upgrades after its analysis reports its original logic here and
// its final logic in the batch run, so logic-derived numbers (Figure 4's
// source split, Figure 5's logic row, Figure 6, the collision columns)
// may legitimately differ; everything derived from the proxy's own
// bytecode and its label must not.
func TestLiveStreamingLandscapeInvariants(t *testing.T) {
	pop, _, res := batchSide(t)

	s := dataset.GenerateStream(dataset.StreamConfig{Config: streamCfg})
	sdet := proxion.NewDetector(s.Chain)
	agg := experiments.NewLandscape(s.Chain, s.Registry, sdet)
	sb := proxion.NewSummaryBuilder()

	var mu sync.Mutex
	var labels []*dataset.Label
	src := proxion.SourceFunc(func() (etypes.Address, bool) {
		l, ok := <-s.C
		if !ok {
			return etypes.Address{}, false
		}
		mu.Lock()
		labels = append(labels, l)
		mu.Unlock()
		return l.Address, true
	})
	sink := proxion.SinkFunc(func(it proxion.Item) {
		mu.Lock()
		l := labels[it.Index]
		mu.Unlock()
		agg.Observe(l, it)
		sb.Emit(it)
	})
	snap := sdet.AnalyzeStream(src, s.Registry, sink, proxion.AnalyzeOptions{Window: 64})
	if snap.Contracts != int64(len(pop.Labels)) {
		t.Fatalf("streamed %d contracts, population has %d labels", snap.Contracts, len(pop.Labels))
	}

	assertTableEqual(t, "Figure 2", agg.Figure2(), experiments.Figure2(pop))
	assertTableEqual(t, "Table 4", agg.Table4(), experiments.Table4(res))
	assertTableEqual(t, "HiddenProxies", agg.HiddenProxies(), experiments.HiddenProxies(pop, res))

	// Figure 5: proxy instances, unique proxy bytecodes, top-3 share.
	gotF5, wantF5 := agg.Figure5(), experiments.Figure5(pop, res)
	for _, i := range []int{0, 1, 3} {
		if !reflect.DeepEqual(gotF5.Rows[i], wantF5.Rows[i]) {
			t.Errorf("Figure 5 row %d: stream %v, batch %v", i, gotF5.Rows[i], wantF5.Rows[i])
		}
	}

	// Figure 4: per-year pair totals — the proxy verdict itself is
	// upgrade-invariant even when the source split moves between columns.
	gotF4, wantF4 := agg.Figure4(), experiments.Figure4(pop, res)
	for i := range wantF4.Rows {
		gotTotal := gotF4.Rows[i][len(gotF4.Rows[i])-1]
		wantTotal := wantF4.Rows[i][len(wantF4.Rows[i])-1]
		if gotTotal != wantTotal {
			t.Errorf("Figure 4 row %d total: stream %s, batch %s", i, gotTotal, wantTotal)
		}
	}

	gotSum, wantSum := sb.Summary(nil), proxion.Summarize(res)
	if gotSum.Proxies != wantSum.Proxies ||
		gotSum.TargetStorage != wantSum.TargetStorage ||
		gotSum.TargetHardcoded != wantSum.TargetHardcoded ||
		gotSum.EmulationErrors != wantSum.EmulationErrors ||
		gotSum.Unresolved != wantSum.Unresolved ||
		!reflect.DeepEqual(gotSum.Standards, wantSum.Standards) {
		t.Errorf("streaming summary invariants diverge:\nstream: %+v\nbatch:  %+v", gotSum, wantSum)
	}
}

func assertTableEqual(t *testing.T, name string, got, want *experiments.Table) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s diverges:\nstream: %+v\nbatch:  %+v", name, got, want)
	}
}
