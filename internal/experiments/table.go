// Package experiments regenerates every table and figure in the paper's
// evaluation (Sections 6 and 7) against the synthetic landscape. Each
// experiment returns a Table whose rows mirror the paper's presentation,
// with the paper's reported values carried alongside for the
// paper-vs-measured record in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the paper artifact this reproduces, e.g. "Table 2" or "Figure 5".
	ID string
	// Title is a one-line description.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the measured (and, where applicable, paper-reported) values.
	Rows [][]string
	// Notes carry caveats: scaling, substitutions, deviations.
	Notes []string
}

// Render formats the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// pct formats a ratio as a percentage.
func pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// itoa is shorthand for int formatting in row literals.
func itoa(v int) string { return fmt.Sprintf("%d", v) }

// CSV renders the table as comma-separated values for external plotting
// (the paper's figures are charts; the CSV carries the same series).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(cell, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
			b.WriteByte('"')
		} else {
			b.WriteString(cell)
		}
	}
	b.WriteByte('\n')
}
