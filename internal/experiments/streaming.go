package experiments

import (
	"fmt"
	"sort"

	"repro/internal/chain"
	"repro/internal/dataset"
	"repro/internal/etherscan"
	"repro/internal/etypes"
	"repro/internal/proxion"
)

// Landscape is the incremental aggregate behind the Section 7 tables: it
// observes one (label, analysis item) at a time and renders Figure 2,
// Figure 4, Table 3, Figure 5, Table 4, Figure 6 and the hidden-proxy
// count from its folded state. Its memory does not grow with the corpus —
// the per-year counters are fixed-size and the only maps are keyed by
// distinct bytecodes and distinct colliding templates, the cardinalities
// whose smallness is precisely what Figure 5 measures.
//
// The batch table functions are thin wrappers that replay a completed
// Population/Result through Observe; a streaming run feeds Observe as
// items leave the analysis sink, then renders once the stream drains.
// Aggregates built over disjoint partitions combine with Merge.
type Landscape struct {
	registry *etherscan.Registry
	ch       *chain.Chain
	// det enables the Figure 6 upgrade recovery; leave nil if the table
	// is not needed.
	det *proxion.Detector

	f2 map[int]*availCounts
	f4 map[int]*pairSrcCounts

	funcByYear     map[int]int
	storByYear     map[int]int
	templateOfFunc map[int]int

	proxyDupes map[etypes.Hash]int
	logicDupes map[etypes.Hash]int
	logicSeen  map[etypes.Address]struct{}

	standards map[proxion.Standard]int
	proxies   int
	hidden    int

	upHist map[int]int
}

type availCounts struct{ both, sourceOnly, txOnly, neither int }

type pairSrcCounts struct{ both, logicOnly, proxyOnly, neither int }

// NewLandscape returns an empty aggregate reading source availability
// from reg, bytecode identity from ch, and (when det is non-nil) upgrade
// history through det.
func NewLandscape(ch *chain.Chain, reg *etherscan.Registry, det *proxion.Detector) *Landscape {
	a := &Landscape{
		registry:       reg,
		ch:             ch,
		det:            det,
		f2:             make(map[int]*availCounts),
		f4:             make(map[int]*pairSrcCounts),
		funcByYear:     make(map[int]int),
		storByYear:     make(map[int]int),
		templateOfFunc: make(map[int]int),
		proxyDupes:     make(map[etypes.Hash]int),
		logicDupes:     make(map[etypes.Hash]int),
		logicSeen:      make(map[etypes.Address]struct{}),
		standards:      make(map[proxion.Standard]int),
		upHist:         make(map[int]int),
	}
	for _, y := range years {
		a.f2[y] = &availCounts{}
		a.f4[y] = &pairSrcCounts{}
	}
	return a
}

// populationMember applies the populationLabels filter to one label.
func populationMember(l *dataset.Label) bool {
	switch l.Kind {
	case dataset.KindLogic, dataset.KindLibrary, dataset.KindDestroyed:
		return false
	}
	return true
}

// Observe folds one contract: its ground-truth label (may be nil when no
// label exists for the address) and its finalized analysis item. Call at
// most once per contract; in a streaming run the item's chain reads
// (source lookups, bytecode hashes, upgrade history) happen here, before
// retirement can drop the records they touch.
func (a *Landscape) Observe(l *dataset.Label, it proxion.Item) {
	if l != nil && populationMember(l) {
		c := a.f2[l.Year]
		if c != nil {
			switch {
			case l.HasSource && l.HasTx:
				c.both++
			case l.HasSource:
				c.sourceOnly++
			case l.HasTx:
				c.txOnly++
			default:
				c.neither++
			}
		}
	}

	rep := it.Report
	if rep.IsProxy {
		a.observeStandard(rep)
		a.proxyDupes[a.ch.CodeHash(rep.Address)]++
		if _, dup := a.logicSeen[rep.Logic]; !dup {
			a.logicSeen[rep.Logic] = struct{}{}
			a.logicDupes[a.ch.CodeHash(rep.Logic)]++
		}
		if l != nil {
			if c := a.f4[l.Year]; c != nil {
				proxySrc := a.registry.HasSource(rep.Address)
				logicSrc := a.registry.HasSource(rep.Logic)
				switch {
				case proxySrc && logicSrc:
					c.both++
				case logicSrc:
					c.logicOnly++
				case proxySrc:
					c.proxyOnly++
				default:
					c.neither++
				}
			}
			if !l.HasSource && !l.HasTx {
				a.hidden++
			}
		}
		if a.det != nil {
			if rep.Target != proxion.TargetStorage {
				a.upHist[0]++
			} else {
				a.upHist[a.det.UpgradeCount(rep.Address, rep.ImplSlot)]++
			}
		}
	}

	if it.Pair != nil && l != nil {
		if len(it.Pair.Functions) > 0 {
			a.funcByYear[l.Year]++
			a.templateOfFunc[l.TemplateID]++
		}
		if anyExploitableCols(it.Pair.Storage) {
			a.storByYear[l.Year]++
		}
	}
}

// observeStandard folds only the proxy count and Table 4 standard split
// for one report — the subset of Observe the batch Table4 wrapper needs,
// which has neither chain nor labels in scope.
func (a *Landscape) observeStandard(rep proxion.Report) {
	if !rep.IsProxy {
		return
	}
	a.proxies++
	a.standards[rep.Standard]++
}

// Merge folds another aggregate (built over a disjoint partition of the
// corpus) into this one. Note logicSeen dedup is per-partition: a logic
// contract proxied from two partitions counts once per partition.
//
// Overlapping inputs are NOT deduplicated: every counter except logicSeen
// is additive, so a contract Observed by both aggregates counts twice in
// the merged tables. logicSeen itself merges by set union — a logic
// address seen in both partitions occupies one slot afterwards, and
// further Observe calls on the merged aggregate dedup against the union.
// Callers that shard a corpus must therefore partition it disjointly;
// Merge has no way to detect or repair double-counting after the fact.
func (a *Landscape) Merge(o *Landscape) {
	for y, c := range o.f2 {
		if dst := a.f2[y]; dst != nil {
			dst.both += c.both
			dst.sourceOnly += c.sourceOnly
			dst.txOnly += c.txOnly
			dst.neither += c.neither
		}
	}
	for y, c := range o.f4 {
		if dst := a.f4[y]; dst != nil {
			dst.both += c.both
			dst.logicOnly += c.logicOnly
			dst.proxyOnly += c.proxyOnly
			dst.neither += c.neither
		}
	}
	for y, n := range o.funcByYear {
		a.funcByYear[y] += n
	}
	for y, n := range o.storByYear {
		a.storByYear[y] += n
	}
	for tid, n := range o.templateOfFunc {
		a.templateOfFunc[tid] += n
	}
	for h, n := range o.proxyDupes {
		a.proxyDupes[h] += n
	}
	for addr := range o.logicSeen {
		a.logicSeen[addr] = struct{}{}
	}
	for h, n := range o.logicDupes {
		a.logicDupes[h] += n
	}
	for s, n := range o.standards {
		a.standards[s] += n
	}
	a.proxies += o.proxies
	a.hidden += o.hidden
	for k, n := range o.upHist {
		a.upHist[k] += n
	}
}

// Figure2 renders the availability breakdown from the folded per-year
// counts, cumulating at render time.
func (a *Landscape) Figure2() *Table {
	t := &Table{
		ID:     "Figure 2",
		Title:  "Cumulative alive contracts by source/transaction availability",
		Header: []string{"year", "source+tx", "source only", "tx only", "hidden (neither)", "total"},
	}
	var cum availCounts
	for _, y := range years {
		c := a.f2[y]
		cum.both += c.both
		cum.sourceOnly += c.sourceOnly
		cum.txOnly += c.txOnly
		cum.neither += c.neither
		total := cum.both + cum.sourceOnly + cum.txOnly + cum.neither
		t.Rows = append(t.Rows, []string{
			itoa(y), itoa(cum.both), itoa(cum.sourceOnly), itoa(cum.txOnly), itoa(cum.neither), itoa(total),
		})
	}
	total := cum.both + cum.sourceOnly + cum.txOnly + cum.neither
	t.Notes = append(t.Notes,
		fmt.Sprintf("source availability %s (paper ~18%%), tx availability %s (paper ~53%% incl. proxies)",
			pct(cum.both+cum.sourceOnly, total), pct(cum.both+cum.txOnly, total)),
		"population scaled from 36M to the configured size; proportions are the reproduction target")
	return t
}

// Figure4 renders the pair source-availability breakdown.
func (a *Landscape) Figure4() *Table {
	t := &Table{
		ID:     "Figure 4",
		Title:  "Cumulative detected proxy/logic pairs by source availability",
		Header: []string{"year", "both sources", "logic only", "proxy only", "neither", "total"},
	}
	var cum pairSrcCounts
	for _, y := range years {
		c := a.f4[y]
		cum.both += c.both
		cum.logicOnly += c.logicOnly
		cum.proxyOnly += c.proxyOnly
		cum.neither += c.neither
		t.Rows = append(t.Rows, []string{
			itoa(y), itoa(cum.both), itoa(cum.logicOnly), itoa(cum.proxyOnly), itoa(cum.neither),
			itoa(cum.both + cum.logicOnly + cum.proxyOnly + cum.neither),
		})
	}
	t.Notes = append(t.Notes,
		"paper: ~90% of proxy contracts lack source; the 'logic only' and 'neither' series dominate")
	return t
}

// Table3 renders the collision counts per deployment year.
func (a *Landscape) Table3() *Table {
	funcTotal, storTotal := 0, 0
	for _, y := range years {
		funcTotal += a.funcByYear[y]
		storTotal += a.storByYear[y]
	}
	dupFuncCollisions := 0
	for _, n := range a.templateOfFunc {
		if n > 1 {
			dupFuncCollisions += n
		}
	}
	t := &Table{
		ID:     "Table 3",
		Title:  "Function and storage collisions by proxy deployment year",
		Header: []string{"year", "function collisions", "storage collisions"},
	}
	for _, y := range years {
		t.Rows = append(t.Rows, []string{itoa(y), itoa(a.funcByYear[y]), itoa(a.storByYear[y])})
	}
	t.Rows = append(t.Rows, []string{"total", itoa(funcTotal), itoa(storTotal)})
	t.Notes = append(t.Notes,
		fmt.Sprintf("duplicated-bytecode share of function collisions: %s (paper: 98.7%%)",
			pct(dupFuncCollisions, funcTotal)),
		"paper totals: 1,566,784 function and 3,022 storage collisions at 36M-contract scale")
	return t
}

// Figure5 renders the bytecode-uniqueness skew.
func (a *Landscape) Figure5() *Table {
	topShare := func(m map[etypes.Hash]int, k int) (int, int) {
		var counts []int
		total := 0
		for _, n := range m {
			counts = append(counts, n)
			total += n
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		top := 0
		for i := 0; i < k && i < len(counts); i++ {
			top += counts[i]
		}
		return top, total
	}
	topProxies, totalProxies := topShare(a.proxyDupes, 3)

	t := &Table{
		ID:     "Figure 5",
		Title:  "Bytecode uniqueness of detected proxies and logics",
		Header: []string{"metric", "measured", "paper"},
	}
	t.Rows = append(t.Rows,
		[]string{"proxy instances", itoa(totalProxies), "19,599,317"},
		[]string{"unique proxy bytecodes", itoa(len(a.proxyDupes)), "96,420"},
		[]string{"unique logic bytecodes", itoa(len(a.logicDupes)), "38,707"},
		[]string{"top-3 proxy template share", pct(topProxies, totalProxies), "~42%"},
	)
	t.Notes = append(t.Notes,
		"the top-3 templates model CoinTool_App, XENTorrent and OwnableDelegateProxy")
	return t
}

// Table4 renders the proxy design-standard split.
func (a *Landscape) Table4() *Table {
	t := &Table{
		ID:     "Table 4",
		Title:  "Proxy contracts by design standard",
		Header: []string{"standard", "contracts", "ratio", "paper ratio"},
	}
	t.Rows = append(t.Rows,
		[]string{"EIP-1167", itoa(a.standards[proxion.StandardEIP1167]), pct(a.standards[proxion.StandardEIP1167], a.proxies), "89.05%"},
		[]string{"EIP-1822", itoa(a.standards[proxion.StandardEIP1822]), pct(a.standards[proxion.StandardEIP1822], a.proxies), "0.12%"},
		[]string{"EIP-1967", itoa(a.standards[proxion.StandardEIP1967]), pct(a.standards[proxion.StandardEIP1967], a.proxies), "1.00%"},
		[]string{"Others", itoa(a.standards[proxion.StandardOther]), pct(a.standards[proxion.StandardOther], a.proxies), "9.83%"},
	)
	t.Notes = append(t.Notes,
		"diamond (EIP-2535) proxies are missed by emulation, as the paper documents")
	return t
}

// Figure6 renders the upgrade-count distribution. Requires the aggregate
// to have been built with a non-nil detector.
func (a *Landscape) Figure6() *Table {
	upgraded, total, events, maxUp := 0, 0, 0, 0
	var keys []int
	for k, n := range a.upHist {
		keys = append(keys, k)
		total += n
		if k > 0 {
			upgraded += n
			events += k * n
		}
		if k > maxUp && n > 0 {
			maxUp = k
		}
	}
	sort.Ints(keys)
	t := &Table{
		ID:     "Figure 6",
		Title:  "Logic-contract upgrade counts per proxy (Algorithm 1)",
		Header: []string{"upgrades", "proxies"},
	}
	for _, k := range keys {
		t.Rows = append(t.Rows, []string{itoa(k), itoa(a.upHist[k])})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("never upgraded: %s (paper: 99.7%%); upgrade events: %d; max upgrades: %d (paper tail reaches ~80)",
			pct(total-upgraded, total), events, maxUp),
	)
	return t
}

// HiddenProxies renders the hidden-proxy headline count.
func (a *Landscape) HiddenProxies() *Table {
	t := &Table{
		ID:     "Section 7.2",
		Title:  "Hidden proxies (no source, no transactions)",
		Header: []string{"metric", "measured", "paper"},
	}
	t.Rows = append(t.Rows,
		[]string{"proxies detected", itoa(a.proxies), "19,599,317 (54.2%)"},
		[]string{"hidden among them", fmt.Sprintf("%d (%s)", a.hidden, pct(a.hidden, a.proxies)), "~1.5M (~7.7%)"},
	)
	return t
}

// replay feeds a completed batch run through the aggregate: every label
// paired with its report and pair analysis. This is the bridge that lets
// the batch table functions share the streaming fold.
func (a *Landscape) replay(pop *dataset.Population, res *proxion.Result) {
	repBy := make(map[etypes.Address]proxion.Report, len(res.Reports))
	for _, rep := range res.Reports {
		repBy[rep.Address] = rep
	}
	pairBy := make(map[etypes.Address]*proxion.PairAnalysis, len(res.Pairs))
	for i := range res.Pairs {
		pairBy[res.Pairs[i].Proxy] = &res.Pairs[i]
	}
	for _, l := range pop.Labels {
		it := proxion.Item{Report: repBy[l.Address]}
		if pa, ok := pairBy[l.Address]; ok {
			it.Pair = pa
		}
		a.Observe(l, it)
	}
}
