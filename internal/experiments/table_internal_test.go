package experiments

import (
	"strings"
	"testing"
)

// TestPct pins the percentage formatter, in particular the zero-denominator
// guard every summary row relies on.
func TestPct(t *testing.T) {
	cases := []struct {
		num, den int
		want     string
	}{
		{0, 0, "n/a"},
		{5, 0, "n/a"},
		{0, 10, "0.0%"},
		{1, 3, "33.3%"},
		{2, 3, "66.7%"},
		{10, 10, "100.0%"},
		{207, 100, "207.0%"},
	}
	for _, c := range cases {
		if got := pct(c.num, c.den); got != c.want {
			t.Errorf("pct(%d, %d) = %q, want %q", c.num, c.den, got, c.want)
		}
	}
}

// TestConfusionRecord drives record through all four quadrants and checks
// the accuracy math, including the empty-matrix guard.
func TestConfusionRecord(t *testing.T) {
	var c Confusion
	if got := c.Accuracy(); got != 0 {
		t.Errorf("empty confusion accuracy = %v, want 0", got)
	}
	c.record(true, true)   // TP
	c.record(true, true)   // TP
	c.record(true, false)  // FP
	c.record(false, false) // TN
	c.record(false, true)  // FN
	if c.TP != 2 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Fatalf("confusion = %+v, want TP=2 FP=1 TN=1 FN=1", c)
	}
	if got, want := c.Accuracy(), 3.0/5.0; got != want {
		t.Errorf("accuracy = %v, want %v", got, want)
	}
}

// TestRenderColumnWidths: every column must be padded to its widest cell,
// whether that is the header or a row value.
func TestRenderColumnWidths(t *testing.T) {
	table := &Table{
		ID:     "T",
		Title:  "widths",
		Header: []string{"wide-header", "x"},
		Rows: [][]string{
			{"a", "wide-cell-value"},
			{"b", "y"},
		},
	}
	lines := strings.Split(table.Render(), "\n")
	// Line 1 is the header, line 2 the separator, lines 3-4 the rows.
	if len(lines) < 5 {
		t.Fatalf("render produced %d lines:\n%s", len(lines), table.Render())
	}
	sep := lines[2]
	if want := strings.Repeat("-", len("wide-header")) + "  " + strings.Repeat("-", len("wide-cell-value")); sep != want {
		t.Errorf("separator %q, want %q", sep, want)
	}
	for _, row := range lines[3:5] {
		if idx := strings.Index(row, strings.TrimRight(row[len("wide-header")+2:], " ")); idx != len("wide-header")+2 {
			t.Errorf("second column misaligned in row %q", row)
		}
	}
}

// TestCSVNewlineQuoting: cells embedding newlines must be quoted, not split
// into extra records.
func TestCSVNewlineQuoting(t *testing.T) {
	table := &Table{
		Header: []string{"k", "v"},
		Rows:   [][]string{{"multi\nline", "plain"}},
	}
	want := "k,v\n\"multi\nline\",plain\n"
	if got := table.CSV(); got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}

// TestItoa pins the row-literal helper.
func TestItoa(t *testing.T) {
	if got := itoa(-42); got != "-42" {
		t.Errorf("itoa(-42) = %q", got)
	}
	if got := itoa(0); got != "0" {
		t.Errorf("itoa(0) = %q", got)
	}
}
