package experiments

import (
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/etypes"
	"repro/internal/proxion"
)

// TestLandscapeMergePartitions: two aggregates built over interleaved
// halves of a corpus merge into the same tables a single pass produces.
// Figure 5's unique-logic row is the documented exception — logicSeen
// dedups per partition — so the comparison covers everything else.
func TestLandscapeMergePartitions(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 11, Contracts: 900})
	det := proxion.NewDetector(pop.Chain)
	res := det.AnalyzeAll(pop.Registry)

	full := NewLandscape(pop.Chain, pop.Registry, det)
	full.replay(pop, res)

	repBy := make(map[etypes.Address]proxion.Report, len(res.Reports))
	for _, rep := range res.Reports {
		repBy[rep.Address] = rep
	}
	pairBy := make(map[etypes.Address]*proxion.PairAnalysis, len(res.Pairs))
	for i := range res.Pairs {
		pairBy[res.Pairs[i].Proxy] = &res.Pairs[i]
	}

	parts := [2]*Landscape{
		NewLandscape(pop.Chain, pop.Registry, det),
		NewLandscape(pop.Chain, pop.Registry, det),
	}
	for i, l := range pop.Labels {
		it := proxion.Item{Report: repBy[l.Address]}
		if pa, ok := pairBy[l.Address]; ok {
			it.Pair = pa
		}
		parts[i%2].Observe(l, it)
	}
	parts[0].Merge(parts[1])

	for name, pair := range map[string][2]*Table{
		"Figure 2":      {parts[0].Figure2(), full.Figure2()},
		"Figure 4":      {parts[0].Figure4(), full.Figure4()},
		"Table 3":       {parts[0].Table3(), full.Table3()},
		"Table 4":       {parts[0].Table4(), full.Table4()},
		"Figure 6":      {parts[0].Figure6(), full.Figure6()},
		"HiddenProxies": {parts[0].HiddenProxies(), full.HiddenProxies()},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Errorf("%s: merged partitions diverge from single pass:\nmerged: %+v\nfull:   %+v", name, pair[0], pair[1])
		}
	}

	// Figure 5's proxy rows still add up exactly across partitions.
	got, want := parts[0].Figure5(), full.Figure5()
	for _, i := range []int{0, 1, 3} {
		if !reflect.DeepEqual(got.Rows[i], want.Rows[i]) {
			t.Errorf("Figure 5 row %d: merged %v, full %v", i, got.Rows[i], want.Rows[i])
		}
	}
}

// TestLandscapeMergeOverlappingInputs pins Merge's documented contract
// for NON-disjoint partitions: additive counters double-count every
// overlapped contract, while logicSeen merges by set union. The test
// feeds the identical corpus to both aggregates — total overlap, the
// worst case — so any accidental dedup (or accidental union-doubling)
// shows up as an exact-count mismatch.
func TestLandscapeMergeOverlappingInputs(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 11, Contracts: 900})
	det := proxion.NewDetector(pop.Chain)
	res := det.AnalyzeAll(pop.Registry)

	repBy := make(map[etypes.Address]proxion.Report, len(res.Reports))
	for _, rep := range res.Reports {
		repBy[rep.Address] = rep
	}
	pairBy := make(map[etypes.Address]*proxion.PairAnalysis, len(res.Pairs))
	for i := range res.Pairs {
		pairBy[res.Pairs[i].Proxy] = &res.Pairs[i]
	}
	feed := func(a *Landscape) {
		for _, l := range pop.Labels {
			it := proxion.Item{Report: repBy[l.Address]}
			if pa, ok := pairBy[l.Address]; ok {
				it.Pair = pa
			}
			a.Observe(l, it)
		}
	}

	single := NewLandscape(pop.Chain, pop.Registry, det)
	feed(single)
	if single.proxies == 0 {
		t.Fatalf("corpus produced no proxies; overlap assertions would be vacuous")
	}

	left := NewLandscape(pop.Chain, pop.Registry, det)
	right := NewLandscape(pop.Chain, pop.Registry, det)
	feed(left)
	feed(right)
	left.Merge(right)

	// Additive counters: exactly doubled, nothing deduplicated.
	if left.proxies != 2*single.proxies {
		t.Errorf("proxies after total-overlap merge: %d, want exactly 2×%d", left.proxies, single.proxies)
	}
	if left.hidden != 2*single.hidden {
		t.Errorf("hidden after total-overlap merge: %d, want exactly 2×%d", left.hidden, single.hidden)
	}
	for s, n := range single.standards {
		if got := left.standards[s]; got != 2*n {
			t.Errorf("standard %v: merged %d, want 2×%d", s, got, n)
		}
	}
	for y, n := range single.funcByYear {
		if got := left.funcByYear[y]; got != 2*n {
			t.Errorf("funcByYear[%d]: merged %d, want 2×%d", y, got, n)
		}
	}
	for h, n := range single.proxyDupes {
		if got := left.proxyDupes[h]; got != 2*n {
			t.Errorf("proxyDupes[%x]: merged %d, want 2×%d", h[:4], got, n)
		}
	}
	// Per-partition dedup means logicDupes also double: each aggregate
	// counted its own first sighting of every logic contract.
	for h, n := range single.logicDupes {
		if got := left.logicDupes[h]; got != 2*n {
			t.Errorf("logicDupes[%x]: merged %d, want 2×%d", h[:4], got, n)
		}
	}

	// logicSeen is the one set-union field: total overlap leaves it the
	// same size as a single pass, not doubled.
	if len(left.logicSeen) != len(single.logicSeen) {
		t.Errorf("logicSeen after total-overlap merge: %d addresses, want union size %d",
			len(left.logicSeen), len(single.logicSeen))
	}

	// And the union keeps deduping: re-Observing a proxy whose logic is
	// already in the merged set must not grow logicDupes further.
	before := len(left.logicSeen)
	dupes := make(map[etypes.Hash]int, len(left.logicDupes))
	for h, n := range left.logicDupes {
		dupes[h] = n
	}
	for _, rep := range res.Reports {
		if rep.IsProxy {
			left.Observe(nil, proxion.Item{Report: rep})
		}
	}
	if len(left.logicSeen) != before {
		t.Errorf("re-observation grew logicSeen from %d to %d; union lost dedup state", before, len(left.logicSeen))
	}
	if !reflect.DeepEqual(left.logicDupes, dupes) {
		t.Errorf("re-observation changed logicDupes; merged set no longer dedups")
	}
}

// TestSummaryBuilderMerge: builders fed disjoint interleaved item streams
// merge into the batch summary.
func TestSummaryBuilderMerge(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 11, Contracts: 900})
	det := proxion.NewDetector(pop.Chain)
	res := det.AnalyzeAll(pop.Registry)

	pairBy := make(map[etypes.Address]*proxion.PairAnalysis, len(res.Pairs))
	for i := range res.Pairs {
		pairBy[res.Pairs[i].Proxy] = &res.Pairs[i]
	}
	parts := [2]*proxion.SummaryBuilder{proxion.NewSummaryBuilder(), proxion.NewSummaryBuilder()}
	for i, rep := range res.Reports {
		it := proxion.Item{Report: rep}
		if pa, ok := pairBy[rep.Address]; ok {
			it.Pair = pa
		}
		parts[i%2].Emit(it)
	}
	parts[0].Merge(parts[1])

	want := proxion.Summarize(res)
	want.Pipeline = nil
	if got := parts[0].Summary(nil); !reflect.DeepEqual(got, want) {
		t.Errorf("merged summary diverges:\nmerged: %+v\nbatch:  %+v", got, want)
	}
}
