package experiments

import (
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/etypes"
	"repro/internal/proxion"
)

// TestLandscapeMergePartitions: two aggregates built over interleaved
// halves of a corpus merge into the same tables a single pass produces.
// Figure 5's unique-logic row is the documented exception — logicSeen
// dedups per partition — so the comparison covers everything else.
func TestLandscapeMergePartitions(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 11, Contracts: 900})
	det := proxion.NewDetector(pop.Chain)
	res := det.AnalyzeAll(pop.Registry)

	full := NewLandscape(pop.Chain, pop.Registry, det)
	full.replay(pop, res)

	repBy := make(map[etypes.Address]proxion.Report, len(res.Reports))
	for _, rep := range res.Reports {
		repBy[rep.Address] = rep
	}
	pairBy := make(map[etypes.Address]*proxion.PairAnalysis, len(res.Pairs))
	for i := range res.Pairs {
		pairBy[res.Pairs[i].Proxy] = &res.Pairs[i]
	}

	parts := [2]*Landscape{
		NewLandscape(pop.Chain, pop.Registry, det),
		NewLandscape(pop.Chain, pop.Registry, det),
	}
	for i, l := range pop.Labels {
		it := proxion.Item{Report: repBy[l.Address]}
		if pa, ok := pairBy[l.Address]; ok {
			it.Pair = pa
		}
		parts[i%2].Observe(l, it)
	}
	parts[0].Merge(parts[1])

	for name, pair := range map[string][2]*Table{
		"Figure 2":      {parts[0].Figure2(), full.Figure2()},
		"Figure 4":      {parts[0].Figure4(), full.Figure4()},
		"Table 3":       {parts[0].Table3(), full.Table3()},
		"Table 4":       {parts[0].Table4(), full.Table4()},
		"Figure 6":      {parts[0].Figure6(), full.Figure6()},
		"HiddenProxies": {parts[0].HiddenProxies(), full.HiddenProxies()},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Errorf("%s: merged partitions diverge from single pass:\nmerged: %+v\nfull:   %+v", name, pair[0], pair[1])
		}
	}

	// Figure 5's proxy rows still add up exactly across partitions.
	got, want := parts[0].Figure5(), full.Figure5()
	for _, i := range []int{0, 1, 3} {
		if !reflect.DeepEqual(got.Rows[i], want.Rows[i]) {
			t.Errorf("Figure 5 row %d: merged %v, full %v", i, got.Rows[i], want.Rows[i])
		}
	}
}

// TestSummaryBuilderMerge: builders fed disjoint interleaved item streams
// merge into the batch summary.
func TestSummaryBuilderMerge(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 11, Contracts: 900})
	det := proxion.NewDetector(pop.Chain)
	res := det.AnalyzeAll(pop.Registry)

	pairBy := make(map[etypes.Address]*proxion.PairAnalysis, len(res.Pairs))
	for i := range res.Pairs {
		pairBy[res.Pairs[i].Proxy] = &res.Pairs[i]
	}
	parts := [2]*proxion.SummaryBuilder{proxion.NewSummaryBuilder(), proxion.NewSummaryBuilder()}
	for i, rep := range res.Reports {
		it := proxion.Item{Report: rep}
		if pa, ok := pairBy[rep.Address]; ok {
			it.Pair = pa
		}
		parts[i%2].Emit(it)
	}
	parts[0].Merge(parts[1])

	want := proxion.Summarize(res)
	want.Pipeline = nil
	if got := parts[0].Summary(nil); !reflect.DeepEqual(got, want) {
		t.Errorf("merged summary diverges:\nmerged: %+v\nbatch:  %+v", got, want)
	}
}
