// Package salehi reimplements the Salehi et al. baseline (WTSC 2022,
// "Not so immutable: Upgradeability of smart contracts on Ethereum") as the
// paper characterizes it: dynamic analysis over contracts' *past
// transactions*, identifying proxies from observed delegate calls and
// answering the work's distinguishing question — who holds the power to
// upgrade a proxy. Like CRUSH it is blind to contracts without transaction
// history, and its upgrade-authority analysis additionally needs the proxy
// to have been exercised enough to expose its admin path (Section 9.1).
package salehi

import (
	"repro/internal/chain"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/proxion"
)

// Tool is a Salehi-style analyzer bound to a chain's transaction archive.
type Tool struct {
	chain *chain.Chain
	// minTxs is the history threshold below which the replay analysis is
	// ineffective (the paper: "limiting the effective analysis to only
	// contracts with many transactions").
	minTxs int
}

// New returns the baseline with the default history threshold.
func New(c *chain.Chain) *Tool { return &Tool{chain: c, minTxs: 1} }

// IsProxy mirrors the trace-driven identification: the contract initiated a
// DELEGATECALL in a recorded transaction and has enough history to replay.
func (t *Tool) IsProxy(addr etypes.Address) bool {
	if t.chain.TxCount(addr) < t.minTxs {
		return false
	}
	for _, ev := range t.chain.DelegateEvents() {
		if ev.Proxy == addr {
			return true
		}
	}
	return false
}

// UpgradeAuthority is the study's core result for one proxy: whether it is
// upgradeable at all and, if so, which account can switch the logic.
type UpgradeAuthority struct {
	// Upgradeable is false for clones with a hard-coded target.
	Upgradeable bool
	// AdminSlot is the storage slot whose value gates the upgrade path.
	AdminSlot etypes.Hash
	// Admin is the account currently holding the upgrade power.
	Admin etypes.Address
	// Unprotected is true when a logic-switching write exists with no
	// caller check in the same function — anyone can upgrade.
	Unprotected bool
}

// WhoCanUpgrade analyzes the proxy's bytecode for the function that writes
// the implementation slot and recovers the access-control slot guarding it;
// the admin is that slot's current value. Returns ok=false when the proxy
// has no transaction history (the tool's blind spot) or no implementation
// slot could be established from its traces.
func (t *Tool) WhoCanUpgrade(proxy etypes.Address, implSlot etypes.Hash) (UpgradeAuthority, bool) {
	if t.chain.TxCount(proxy) < t.minTxs {
		return UpgradeAuthority{}, false
	}
	code := t.chain.Code(proxy)
	if len(code) == 0 {
		return UpgradeAuthority{}, false
	}
	// A minimal proxy (hard-coded target) is not upgradeable.
	if _, minimal := disasm.MinimalProxyTarget(code); minimal {
		return UpgradeAuthority{Upgradeable: false}, true
	}

	accs := proxion.ExtractStorageAccesses(code)
	targets := disasm.DispatcherTargets(code)
	if len(targets) == 0 {
		// No dispatcher: nothing can write the slot; effectively frozen.
		return UpgradeAuthority{Upgradeable: false}, true
	}

	// Segment accesses by function and look for the implementation write.
	type span struct{ start, end uint64 }
	spans := make([]span, 0, len(targets))
	for _, start := range targets {
		spans = append(spans, span{start: start, end: uint64(len(code))})
	}
	for i := range spans {
		for j := range spans {
			if spans[j].start > spans[i].start && spans[j].start < spans[i].end {
				spans[i].end = spans[j].start
			}
		}
	}
	for _, sp := range spans {
		var writesImpl bool
		var guard *proxion.StorageAccess
		for i, a := range accs {
			if a.PC < sp.start || a.PC >= sp.end {
				continue
			}
			if a.Kind == proxion.AccessWrite && a.Slot == implSlot {
				writesImpl = true
			}
			if a.Kind == proxion.AccessRead && a.CallerCheck {
				guard = &accs[i]
			}
		}
		if !writesImpl {
			continue
		}
		auth := UpgradeAuthority{Upgradeable: true}
		if guard == nil {
			auth.Unprotected = true
			return auth, true
		}
		auth.AdminSlot = guard.Slot
		word := t.chain.GetState(proxy, guard.Slot)
		auth.Admin = etypes.BytesToAddress(word[32-guard.Offset-guard.Size : 32-guard.Offset])
		return auth, true
	}
	return UpgradeAuthority{Upgradeable: false}, true
}
