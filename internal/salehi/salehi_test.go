package salehi_test

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/asm"
	"repro/internal/chain"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/salehi"
	"repro/internal/solc"
	"repro/internal/u256"
)

var (
	proxyAt = etypes.MustAddress("0x000000000000000000000000000000000000aa01")
	logicAt = etypes.MustAddress("0x000000000000000000000000000000000000aa02")
	adminAt = etypes.MustAddress("0x000000000000000000000000000000000000aa03")
	sender  = etypes.MustAddress("0x000000000000000000000000000000000000aa04")
)

// guardedProxy declares owner at slot 0 and an owner-gated setLogic writing
// the implementation slot.
func guardedProxy(implSlot etypes.Hash) *solc.Contract {
	return &solc.Contract{
		Name: "Guarded",
		Vars: []solc.Var{{Name: "owner", Type: solc.TypeAddress}},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "setLogic", Params: []string{"address"}},
				Body: []solc.Stmt{
					solc.RequireCallerIs{Var: "owner"},
					solc.InlineAsm{Emit: func(p *asm.Program, _ func(string) string) {
						p.PushUint(4).Op(evm.CALLDATALOAD).
							Push(implSlot.Word()).Op(evm.SSTORE)
					}},
				}},
		},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot},
	}
}

func buildChain(t *testing.T, proxySrc *solc.Contract, implSlot etypes.Hash, withTx bool) *chain.Chain {
	t.Helper()
	c := chain.New()
	c.InstallContract(logicAt, []byte{0x00})
	c.InstallContract(proxyAt, solc.MustCompile(proxySrc))
	c.SetStorageDirect(proxyAt, implSlot, etypes.HashFromWord(logicAt.Word()))
	c.SetStorageDirect(proxyAt, etypes.Hash{}, etypes.HashFromWord(adminAt.Word()))
	if withTx {
		c.Execute(sender, proxyAt, []byte{1, 2, 3, 4}, 0, u256.Zero())
	}
	return c
}

func TestIsProxyNeedsHistory(t *testing.T) {
	implSlot := etypes.HashFromWord(u256.FromUint64(0x50))
	c := buildChain(t, guardedProxy(implSlot), implSlot, false)
	tool := salehi.New(c)
	if tool.IsProxy(proxyAt) {
		t.Error("transaction-less proxy visible to replay analysis")
	}
	c2 := buildChain(t, guardedProxy(implSlot), implSlot, true)
	if !salehi.New(c2).IsProxy(proxyAt) {
		t.Error("transacted proxy missed")
	}
}

func TestWhoCanUpgradeRecoversAdmin(t *testing.T) {
	implSlot := etypes.HashFromWord(u256.FromUint64(0x50))
	c := buildChain(t, guardedProxy(implSlot), implSlot, true)
	tool := salehi.New(c)

	auth, ok := tool.WhoCanUpgrade(proxyAt, implSlot)
	if !ok {
		t.Fatal("analysis refused a transacted proxy")
	}
	if !auth.Upgradeable {
		t.Fatal("guarded proxy should be upgradeable")
	}
	if auth.Unprotected {
		t.Error("guarded upgrade path reported unprotected")
	}
	if auth.Admin != adminAt {
		t.Errorf("admin = %s, want %s", auth.Admin, adminAt)
	}
	if auth.AdminSlot != (etypes.Hash{}) {
		t.Errorf("admin slot = %s, want slot 0", auth.AdminSlot)
	}
}

func TestWhoCanUpgradeUnprotected(t *testing.T) {
	implSlot := etypes.HashFromWord(u256.FromUint64(0x50))
	open := &solc.Contract{
		Name: "Open",
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "setLogic", Params: []string{"address"}},
				Body: []solc.Stmt{
					solc.InlineAsm{Emit: func(p *asm.Program, _ func(string) string) {
						p.PushUint(4).Op(evm.CALLDATALOAD).
							Push(implSlot.Word()).Op(evm.SSTORE)
					}},
				}},
		},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot},
	}
	c := buildChain(t, open, implSlot, true)
	auth, ok := salehi.New(c).WhoCanUpgrade(proxyAt, implSlot)
	if !ok || !auth.Upgradeable {
		t.Fatalf("auth = %+v ok=%v", auth, ok)
	}
	if !auth.Unprotected {
		t.Error("anyone-can-upgrade proxy not flagged")
	}
}

func TestWhoCanUpgradeMinimalProxy(t *testing.T) {
	c := chain.New()
	c.InstallContract(logicAt, []byte{0x00})
	c.InstallContract(proxyAt, disasm.MinimalProxyRuntime(logicAt))
	c.Execute(sender, proxyAt, []byte{1, 2, 3, 4}, 0, u256.Zero())

	auth, ok := salehi.New(c).WhoCanUpgrade(proxyAt, etypes.Hash{})
	if !ok {
		t.Fatal("minimal proxy analysis refused")
	}
	if auth.Upgradeable {
		t.Error("minimal proxy reported upgradeable")
	}
}

func TestWhoCanUpgradeRefusesNoHistory(t *testing.T) {
	implSlot := etypes.HashFromWord(u256.FromUint64(0x50))
	c := buildChain(t, guardedProxy(implSlot), implSlot, false)
	if _, ok := salehi.New(c).WhoCanUpgrade(proxyAt, implSlot); ok {
		t.Error("replay analysis must refuse transaction-less contracts")
	}
}
