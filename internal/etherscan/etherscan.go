// Package etherscan simulates the two roles Etherscan plays in the paper:
// a registry of verified contract source code (the ~18% of contracts whose
// developers published source, Section 3.1), and the explorer's built-in
// proxy verification tool — a naive check that flags any contract whose
// bytecode contains a DELEGATECALL opcode, which Etherscan itself admits
// produces many false positives (Section 9.1).
package etherscan

import (
	"sync"

	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/solc"
)

// Entry is one verified-source record.
type Entry struct {
	Source *solc.Contract
	// CompilerKnown records whether the registry knows the exact compiler
	// version. USCHunt's pipeline recompiles sources and halts on unknown
	// compiler versions (~30% of its failures, Section 6.2).
	CompilerKnown bool
}

// Registry maps contract addresses to their published source, when any.
// It is safe for concurrent reads after population.
type Registry struct {
	mu      sync.RWMutex
	entries map[etypes.Address]Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[etypes.Address]Entry)}
}

// Publish records verified source for addr.
func (r *Registry) Publish(addr etypes.Address, src *solc.Contract, compilerKnown bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[addr] = Entry{Source: src, CompilerKnown: compilerKnown}
}

// Forget drops the record for addr, if any. Used by streaming-landscape
// retirement so the registry's footprint tracks the analysis window, not
// the corpus.
func (r *Registry) Forget(addr etypes.Address) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.entries, addr)
}

// Source returns the published source for addr, or nil. Implements
// proxion.SourceProvider.
func (r *Registry) Source(addr etypes.Address) *solc.Contract {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[addr].Source
}

// Entry returns the full record and whether one exists.
func (r *Registry) Entry(addr etypes.Address) (Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[addr]
	return e, ok
}

// HasSource reports whether addr has published source.
func (r *Registry) HasSource(addr etypes.Address) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.entries[addr]
	return ok
}

// Count returns the number of published entries.
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// VerifierIsProxy is Etherscan's proxy verification heuristic: the bytecode
// contains a DELEGATECALL opcode. Cheap, source-free, and over-inclusive —
// library calls and diamonds all count.
func VerifierIsProxy(code []byte) bool {
	return disasm.ContainsOp(code, evm.DELEGATECALL)
}
