package etherscan_test

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/disasm"
	"repro/internal/etherscan"
	"repro/internal/etypes"
	"repro/internal/solc"
)

var someAddr = etypes.MustAddress("0x0000000000000000000000000000000000007777")

func TestRegistryPublishAndLookup(t *testing.T) {
	r := etherscan.NewRegistry()
	if r.HasSource(someAddr) {
		t.Error("empty registry has source")
	}
	src := &solc.Contract{Name: "Thing"}
	r.Publish(someAddr, src, true)
	if !r.HasSource(someAddr) || r.Count() != 1 {
		t.Error("publish not visible")
	}
	if got := r.Source(someAddr); got != src {
		t.Error("source mismatch")
	}
	e, ok := r.Entry(someAddr)
	if !ok || !e.CompilerKnown || e.Source.Name != "Thing" {
		t.Errorf("entry = %+v ok=%v", e, ok)
	}
}

func TestVerifierHeuristic(t *testing.T) {
	// Any DELEGATECALL counts, proxy or not: that is the documented
	// imprecision.
	proxyish := &solc.Contract{
		Name:     "P",
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateHardcoded},
	}
	library := &solc.Contract{
		Name:     "L",
		Fallback: solc.Fallback{Kind: solc.FallbackLibraryCall, Proto: "f()"},
	}
	plain := &solc.Contract{
		Name: "N",
		Funcs: []solc.Func{{
			ABI: abi.Function{Name: "noop"}, Body: []solc.Stmt{solc.Stop{}},
		}},
	}
	if !etherscan.VerifierIsProxy(solc.MustCompile(proxyish)) {
		t.Error("real proxy not flagged")
	}
	if !etherscan.VerifierIsProxy(solc.MustCompile(library)) {
		t.Error("library caller must be (wrongly) flagged — that is the heuristic's FP")
	}
	if etherscan.VerifierIsProxy(solc.MustCompile(plain)) {
		t.Error("plain contract flagged")
	}
	// Minimal proxies are caught too.
	if !etherscan.VerifierIsProxy(disasm.MinimalProxyRuntime(someAddr)) {
		t.Error("minimal proxy not flagged")
	}
}
