// Command proxwatch replays a scripted upgrade timeline through the
// chain follower and prints every upgrade event as it is detected — a
// self-contained demo and debugging driver for the live-following path.
//
// Usage:
//
//	proxwatch [-seed S] [-proxies N] [-checkpoint FILE] [-json] [-v]
//
// The generated timeline interleaves proxy deployments and upgrades
// (EIP-1967, EIP-1822, ad-hoc slots, and beacon indirection) across
// consecutive blocks. proxwatch reveals the chain one block at a time,
// polls the follower after each, and reports what it saw. With -json
// the final follower stats print as a machine-readable snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/faultchain"
	"repro/internal/gen"
	"repro/internal/proxion"
	"repro/internal/watch"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "proxwatch:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "timeline generation seed")
	proxies := flag.Int("proxies", 4, "number of upgradeable proxies in the timeline")
	checkpoint := flag.String("checkpoint", "", "cursor checkpoint file (empty = none)")
	asJSON := flag.Bool("json", false, "print final follower stats as JSON")
	verbose := flag.Bool("v", false, "also log deployments as they stream in")
	flag.Parse()

	tl := gen.GenerateTimeline(gen.TimelineConfig{Seed: *seed, Proxies: *proxies})
	replay := faultchain.NewReplayReader(tl.Chain)
	det := proxion.NewDetector(replay)
	an := watch.NewDetectorAnalyzer(det, tl.Registry, nil)

	events := 0
	cfg := watch.Config{
		Reader:         replay,
		Analyzer:       an,
		CheckpointPath: *checkpoint,
		OnUpgrade: func(ev watch.UpgradeEvent) {
			events++
			collides := ""
			if ev.Item != nil && ev.Item.Pair != nil &&
				(len(ev.Item.Pair.Functions) > 0 || len(ev.Item.Pair.Storage) > 0) {
				collides = "  [COLLISION WINDOW OPEN]"
			}
			fmt.Printf("block %3d  upgrade  proxy %s  slot %s -> logic %s%s\n",
				ev.Block, ev.Proxy.Hex(), ev.Slot.Hex()[:10], ev.NewValue.Hex()[26:], collides)
		},
	}
	if *verbose {
		cfg.OnDeploy = func(it proxion.Item) {
			kind := "contract"
			if it.Report.IsProxy {
				kind = "proxy"
			}
			fmt.Printf("block %3d  deploy   %s %s\n",
				replay.CurrentBlock(), kind, it.Report.Address.Hex())
		}
	}
	f, err := watch.New(cfg)
	if err != nil {
		return err
	}

	end := tl.End()
	start := f.Cursor()
	for b := start + 1; b <= end; b++ {
		replay.SetHead(b)
		if err := f.Poll(); err != nil {
			return fmt.Errorf("poll at block %d: %w", b, err)
		}
	}

	scripted := 0
	for _, ev := range tl.Events {
		if !ev.Deploy {
			scripted++
		}
	}
	st := f.Stats()
	if *asJSON {
		blob, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(blob))
	} else {
		fmt.Printf("followed %d blocks: %d deployments, %d/%d scripted upgrades detected, %d cache entries invalidated\n",
			st.BlocksFollowed, st.DeploymentsSeen, st.UpgradesDetected, scripted, st.Invalidations)
	}
	// Only a cold run sees every scripted upgrade; a checkpoint resume
	// starts past the ones already applied.
	if start == 0 && int(st.UpgradesDetected) != scripted {
		return fmt.Errorf("detected %d upgrades, timeline scripted %d", st.UpgradesDetected, scripted)
	}
	return nil
}
