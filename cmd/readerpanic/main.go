// Command readerpanic runs the chain.Reader contract lint over a source
// tree: every Reader read must execute under chain.CaptureReadError so a
// fallible node degrades single contracts to Unresolved instead of
// crashing the run. See internal/lint/readerpanic for the rule.
//
// Usage:
//
//	readerpanic [root ...]
//
// With no arguments the current directory tree is checked. Exits 1 when
// any unguarded read is found.
package main

import (
	"fmt"
	"os"

	"repro/internal/lint/readerpanic"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := false
	for _, root := range roots {
		findings, err := readerpanic.CheckTree(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "readerpanic:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			bad = true
			fmt.Println(f)
		}
	}
	if bad {
		os.Exit(1)
	}
}
