// Command proxbench runs the deterministic benchmark suite (internal/bench)
// and gates performance regressions against a checked-in baseline.
//
// Usage:
//
//	proxbench [flags]                 run the suite, write BENCH_<timestamp>.json
//	proxbench [flags] compare         run the suite, then diff it against -baseline
//	                                  and exit 1 on regression
//	proxbench compare -current F      diff an existing run file against -baseline
//	                                  without re-measuring
//	proxbench soak [soak flags]       run the bounded-memory streaming soak
//	                                  (one long run, per-item latency + peak
//	                                  memory; see -max-heap-mb)
//	proxbench -list                   print the workload catalogue and exit
//
// Flags:
//
//	-quick / -full      suite profile (default quick; the PR gate uses quick,
//	                    the nightly job uses full)
//	-seed N             corpus seed (default 1; the baseline's seed)
//	-repeats M          run the suite M times and keep each workload's best
//	                    median (default 2 in compare mode, 1 otherwise) —
//	                    the noise-aware "fail only across M repeats" knob
//	-samples / -warmup  override the profile's sampling depth
//	-out FILE           report path (default BENCH_<timestamp>.json)
//	-baseline FILE      baseline to gate against (default bench/baseline.json)
//	-threshold X        allowed relative median regression (default 0.30)
//	-alloc-threshold X  allowed relative allocs/op growth (default 0.50;
//	                    negative disables the allocation gate)
//	-strict-counters    fail the gate on deterministic-counter drift too
//	-cpuprofile FILE    write a pprof CPU profile of the measured suite
//	-memprofile FILE    write a pprof heap profile after the suite
//
// Exit codes: 0 ok, 1 regression (or counter drift under -strict-counters),
// 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "run the quick profile (default)")
	full := flag.Bool("full", false, "run the full (nightly) profile")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	repeats := flag.Int("repeats", 0, "suite repetitions, best median kept (default: 2 when comparing, else 1)")
	samples := flag.Int("samples", 0, "timing samples per workload (0 = profile default)")
	warmup := flag.Int("warmup", 0, "warmup batches per workload (0 = profile default)")
	out := flag.String("out", "", "report output path (default BENCH_<timestamp>.json)")
	baselinePath := flag.String("baseline", "bench/baseline.json", "baseline report for compare mode")
	current := flag.String("current", "", "compare an existing run file instead of measuring")
	threshold := flag.Float64("threshold", 0.30, "allowed relative median regression (0.30 = +30%)")
	allocThreshold := flag.Float64("alloc-threshold", 0.50, "allowed relative allocs/op growth (negative disables the alloc gate)")
	strictCounters := flag.Bool("strict-counters", false, "fail on deterministic-counter drift")
	list := flag.Bool("list", false, "list the workload catalogue and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measured suite")
	memprofile := flag.String("memprofile", "", "write a heap profile after the suite")

	// "compare" works both as a leading subcommand (proxbench compare
	// -current F) and as a trailing word (proxbench -quick compare); the
	// flag package stops at the first positional argument, so the leading
	// form must be peeled off before parsing. "soak" has its own flag set
	// entirely.
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "soak" {
		return runSoak(args[1:])
	}
	compareCmd := false
	if len(args) > 0 && args[0] == "compare" {
		compareCmd = true
		args = args[1:]
	}
	if err := flag.CommandLine.Parse(args); err != nil {
		return 2
	}

	profile := bench.Quick
	if *full {
		profile = bench.Full
	}
	if *quick && *full {
		fmt.Fprintln(os.Stderr, "proxbench: -quick and -full are mutually exclusive")
		return 2
	}

	compareMode := compareCmd || *current != ""
	switch flag.NArg() {
	case 0:
	case 1:
		if flag.Arg(0) != "compare" {
			fmt.Fprintf(os.Stderr, "proxbench: unknown command %q (only \"compare\")\n", flag.Arg(0))
			return 2
		}
		compareMode = true
	default:
		fmt.Fprintln(os.Stderr, "proxbench: too many arguments")
		return 2
	}

	if *list {
		for _, w := range bench.Suite(profile) {
			fmt.Printf("%-34s scale=%-6d batch=%-4d %s\n", w.Name, w.Scale, w.Batch, w.Desc)
		}
		return 0
	}

	var rep *bench.Report
	if *current != "" {
		var err error
		rep, err = bench.LoadReport(*current)
		if err != nil {
			fmt.Fprintln(os.Stderr, "proxbench:", err)
			return 2
		}
	} else {
		n := *repeats
		if n <= 0 {
			n = 1
			if compareMode {
				n = 2
			}
		}
		var err error
		rep, err = measureSuite(profile, *seed, *samples, *warmup, n, *cpuprofile, *memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "proxbench:", err)
			return 2
		}
		rep.CreatedAt = time.Now().UTC().Format(time.RFC3339)

		path := *out
		if path == "" {
			path = bench.Filename(time.Now())
		}
		if err := rep.WriteFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "proxbench:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%s profile, seed %d, %d workloads)\n",
			path, rep.Profile, rep.Seed, len(rep.Workloads))
	}

	if !compareMode {
		return 0
	}

	baseline, err := bench.LoadReport(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proxbench: baseline %s: %v\n", *baselinePath, err)
		fmt.Fprintf(os.Stderr, "proxbench: %v (refresh with: go run ./cmd/proxbench -%s -out %s)\n",
			bench.ErrMissingBaseline, rep.Profile, *baselinePath)
		return 2
	}
	cmp, err := bench.Compare(baseline, rep, bench.CompareOptions{
		Threshold:      *threshold,
		AllocThreshold: *allocThreshold,
		StrictCounters: *strictCounters,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "proxbench:", err)
		return 2
	}
	fmt.Print(cmp.Render())
	if !cmp.OK() {
		fmt.Fprintf(os.Stderr, "proxbench: performance gate FAILED against %s\n", *baselinePath)
		return 1
	}
	fmt.Fprintf(os.Stderr, "proxbench: performance gate passed against %s\n", *baselinePath)
	return 0
}

// runSoak is the "soak" subcommand: one long bounded-memory streaming run
// over a generated landscape, reported in the same versioned JSON schema
// as suite runs (profile "soak") and optionally gated on a peak-heap
// ceiling for the nightly job.
func runSoak(args []string) int {
	fs := flag.NewFlagSet("proxbench soak", flag.ContinueOnError)
	contracts := fs.Int("contracts", 1_000_000, "corpus size to stream")
	seed := fs.Int64("seed", 1, "corpus generation seed")
	window := fs.Int("window", 0, "engine in-flight window (0 = engine default)")
	cacheCap := fs.Int("cache-capacity", 1<<16, "verdict-cache LRU bound (0 = unbounded)")
	retire := fs.Int("retire-window", 0, "generator retirement lag in labels (0 = 2x engine window)")
	out := fs.String("out", "", "report output path (default BENCH_SOAK_<timestamp>.json)")
	maxHeapMB := fs.Int64("max-heap-mb", 0, "fail (exit 1) if peak heap exceeds this many MiB (0 = no ceiling)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "proxbench soak: unexpected arguments")
		return 2
	}

	res, err := bench.RunSoak(bench.SoakOptions{
		Contracts:     *contracts,
		Seed:          *seed,
		Window:        *window,
		CacheCapacity: *cacheCap,
		RetireWindow:  *retire,
		Progress:      os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "proxbench:", err)
		return 2
	}

	rep := &bench.Report{
		SchemaVersion: bench.SchemaVersion,
		Profile:       "soak",
		Seed:          *seed,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		Host:          bench.HostInfo(),
		Workloads:     []bench.WorkloadResult{res},
	}
	path := *out
	if path == "" {
		path = "BENCH_SOAK_" + time.Now().UTC().Format("20060102T150405Z") + ".json"
	}
	if err := rep.WriteFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "proxbench:", err)
		return 2
	}

	fmt.Printf("soak: %d contracts in %.1fs (%.0f contracts/s)\n",
		res.Counters["contracts"], float64(res.WallNs)/1e9, res.OpsPerSec)
	fmt.Printf("  item latency p50 %.3fms  p99 %.3fms\n", res.ItemP50NsPerOp/1e6, res.ItemP99NsPerOp/1e6)
	fmt.Printf("  peak heap %.1f MiB  peak RSS %.1f MiB  retired %d\n",
		float64(res.PeakHeapBytes)/(1<<20), float64(res.PeakRSSBytes)/(1<<20), res.Counters["retired"])
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)

	if *maxHeapMB > 0 && res.PeakHeapBytes > *maxHeapMB<<20 {
		fmt.Fprintf(os.Stderr, "proxbench: soak FAILED: peak heap %.1f MiB exceeds the %d MiB ceiling\n",
			float64(res.PeakHeapBytes)/(1<<20), *maxHeapMB)
		return 1
	}
	return 0
}

// measureSuite runs the suite n times (profiling the whole measured
// region) and folds the repeats into a best-median report.
func measureSuite(profile bench.Profile, seed int64, samples, warmup, n int, cpuprofile, memprofile string) (*bench.Report, error) {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return nil, err
		}
		defer pprof.StopCPUProfile()
	}

	opts := bench.Options{
		Profile:  profile,
		Seed:     seed,
		Samples:  samples,
		Warmup:   warmup,
		Progress: os.Stderr,
	}
	runs := make([]*bench.Report, 0, n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(os.Stderr, "run %d/%d (%s profile, seed %d):\n", i+1, n, profile, seed)
		r, err := bench.Run(opts)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	rep, err := bench.MergeBest(runs...)
	if err != nil {
		return nil, err
	}

	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return nil, err
		}
	}
	return rep, nil
}
