// Command sigminer brute-forces a function name whose 4-byte selector
// collides with a target signature — the honeypot-crafting experiment of
// Section 2.3 (the paper found impl_LUsXCWD2AKCc() colliding with
// free_ether_withdrawal() after ~600M attempts).
//
// Usage:
//
//	sigminer [-target proto] [-prefix p] [-bytes n] [-max attempts]
//
// Matching all 4 bytes takes billions of hashes; -bytes 2 or 3 demonstrates
// the search in seconds and the tool extrapolates the full-collision cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/keccak"
	"repro/internal/sigminer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sigminer:", err)
		os.Exit(1)
	}
}

func run() error {
	target := flag.String("target", "free_ether_withdrawal()", "prototype to collide with")
	prefix := flag.String("prefix", "impl", "candidate name prefix")
	matchBytes := flag.Int("bytes", 2, "selector bytes to match (4 = real collision)")
	maxAttempts := flag.Uint64("max", 50_000_000, "attempt budget")
	flag.Parse()

	sel := keccak.Selector(*target)
	fmt.Printf("target %s -> selector 0x%x\n", *target, sel)
	fmt.Printf("searching %s_* for a %d-byte match (budget %d)...\n",
		*prefix, *matchBytes, *maxAttempts)

	start := time.Now()
	res, ok := sigminer.Mine(sel, *prefix, *matchBytes, *maxAttempts)
	elapsed := time.Since(start)
	rate := float64(res.Attempts) / elapsed.Seconds()

	if !ok {
		return fmt.Errorf("no match within %d attempts (%.0f hashes/s)", res.Attempts, rate)
	}
	found := keccak.Selector(res.Prototype)
	fmt.Printf("found  %s -> selector 0x%x\n", res.Prototype, found)
	fmt.Printf("attempts: %d in %s (%.0f hashes/s)\n", res.Attempts, elapsed.Round(time.Millisecond), rate)
	if *matchBytes < 4 {
		full := (1 << 31) / rate // expected 2^32/2 hashes for a 4-byte match
		fmt.Printf("extrapolated full 4-byte collision: ~%.1f minutes at this rate (paper: 600M attempts, 1.5h on a laptop)\n",
			full/60)
	}
	return nil
}
