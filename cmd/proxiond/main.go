// Command proxiond runs the analysis pipeline as a long-lived service:
// a sharded scan server over a generated chain snapshot, answering
// verdict and collision queries over HTTP and persisting every verdict
// to a disk store so restarts are warm.
//
// Usage:
//
//	proxiond [-addr :8547] [-contracts N] [-seed S] [-shards N]
//	         [-store DIR] [-window N] [-cache-capacity N] [-static=false]
//	         [-follow] [-follow-interval D]
//	         [-resilient] [-faults PROFILE] [-fault-seed S] [-fault-depth D]
//	         [-retries N] [-rpc-timeout D] [-backoff D] [-inflight N]
//	         [-loadtest] [-loadtest-requests N] [-loadtest-concurrency N]
//
// With -loadtest the daemon self-drives: it starts the server, runs the
// built-in load harness against it, prints the JSON report, and exits —
// the one-command smoke/benchmark mode.
//
// With -follow the daemon also tails the chain: new deployments stream
// into the analysis pipeline as their blocks land, upgrade events
// invalidate exactly the affected verdicts, and /v1/watch/stats reports
// follower progress. The cursor is checkpointed under the store
// directory (when one is configured) so restarts resume cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/chain"
	"repro/internal/dataset"
	"repro/internal/faultchain"
	"repro/internal/serve"
	"repro/internal/serve/loadtest"
	"repro/internal/store"
	"repro/internal/watch"
)

func profileNames() string {
	var names []string
	for _, p := range faultchain.Profiles() {
		names = append(names, p.Name)
	}
	return strings.Join(append(names, faultchain.Outage().Name), ", ")
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "proxiond:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8547", "HTTP listen address")
	contracts := flag.Int("contracts", 4000, "population size to generate and serve")
	seed := flag.Int64("seed", 1, "generation seed")
	shards := flag.Int("shards", 4, "number of parallel analysis shards")
	storeDir := flag.String("store", "", "verdict store directory (empty = no persistence)")
	segBytes := flag.Int64("segment-bytes", 0, "verdict store segment size (0 = default)")
	window := flag.Int("window", 0, "per-shard in-flight window (0 = engine default)")
	cacheCap := flag.Int("cache-capacity", 0, "per-shard verdict-cache LRU bound (0 = unbounded)")
	staticOn := flag.Bool("static", true, "structural near-clone promotion (second-level verdict-cache key)")
	follow := flag.Bool("follow", false, "tail the chain: stream new deployments, invalidate on upgrades")
	followInterval := flag.Duration("follow-interval", 250*time.Millisecond, "follower poll interval")
	resilient := flag.Bool("resilient", false, "route node reads through the resilient client even with faults off")
	faults := flag.String("faults", "off", "fault-injection profile: off, "+profileNames())
	faultSeed := flag.Int64("fault-seed", 1, "fault schedule seed")
	faultDepth := flag.Int("fault-depth", 0, "override the profile's fault depth (0 keeps the profile default)")
	retries := flag.Int("retries", 0, "max retries per node read (0 = client default)")
	rpcTimeout := flag.Duration("rpc-timeout", 0, "per-read timeout (0 = client default)")
	backoff := flag.Duration("backoff", 0, "base retry backoff (0 = client default)")
	inflight := flag.Int("inflight", 0, "max concurrent node reads (0 = client default)")
	verbose := flag.Bool("v", false, "log every request outcome summary on shutdown")
	selfLoad := flag.Bool("loadtest", false, "start, self-drive the load harness, print the report, exit")
	loadReqs := flag.Int("loadtest-requests", 2048, "loadtest: total requests")
	loadConc := flag.Int("loadtest-concurrency", 16, "loadtest: concurrent workers")
	loadOut := flag.String("loadtest-report", "", "loadtest: also write the JSON report to this path")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "generating %d-contract chain snapshot (seed %d)...\n", *contracts, *seed)
	pop := dataset.Generate(dataset.Config{Seed: *seed, Contracts: *contracts})
	fmt.Fprintf(os.Stderr, "chain height %d, %d contracts alive\n",
		pop.Chain.CurrentBlock(), len(pop.Chain.Contracts()))

	// Per-shard readers: each shard gets its own resilient client so one
	// shard's circuit breaker never gates another's reads.
	cfg := serve.Config{
		Sources:           pop.Registry,
		Shards:            *shards,
		StoreDir:          *storeDir,
		StoreOptions:      store.Options{SegmentBytes: *segBytes},
		Window:            *window,
		CacheCapacity:     *cacheCap,
		DisableStructural: !*staticOn,
	}
	if *faults != "off" || *resilient {
		copts := faultchain.Options{
			MaxRetries:  *retries,
			Timeout:     *rpcTimeout,
			BackoffBase: *backoff,
			MaxInFlight: *inflight,
		}
		var prof faultchain.Profile
		injecting := false
		if *faults != "off" {
			p, ok := faultchain.ProfileByName(*faults)
			if !ok {
				return fmt.Errorf("unknown fault profile %q (have: off, %s)", *faults, profileNames())
			}
			if *faultDepth > 0 {
				p.Depth = *faultDepth
			}
			prof, injecting = p, true
			fmt.Fprintf(os.Stderr, "injecting faults: profile %s, seed %d, depth %d\n", p.Name, *faultSeed, p.Depth)
		}
		cfg.ReaderFor = func(shard int) chain.Reader {
			var sched *faultchain.Schedule
			if injecting {
				// Distinct per-shard schedules from the one seed.
				s := faultchain.NewSchedule(prof, *faultSeed+int64(shard))
				sched = &s
			}
			client, _ := faultchain.NewResilientReader(pop.Chain, sched, copts)
			return client
		}
	} else {
		cfg.Reader = pop.Chain
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	if *storeDir != "" {
		st := srv.StoreStats()
		fmt.Fprintf(os.Stderr, "verdict store: %d entries in %d segment(s), loaded in %.1fms (%d torn bytes truncated)\n",
			st.Entries, st.Segments, st.LoadMS, st.TruncatedBytes)
	}

	var follower *watch.Follower
	if *follow {
		fr := chain.Reader(pop.Chain)
		if cfg.ReaderFor != nil {
			// The follower gets its own resilient client with a fault
			// schedule distinct from every shard's.
			fr = cfg.ReaderFor(*shards)
		}
		wcfg := watch.Config{
			Reader:       fr,
			Analyzer:     srv,
			PollInterval: *followInterval,
			OnUpgrade: func(ev watch.UpgradeEvent) {
				fmt.Fprintf(os.Stderr, "block %d: %s upgraded (slot %s), verdict re-analyzed\n",
					ev.Block, ev.Proxy.Hex(), ev.Slot.Hex())
			},
			OnError: func(err error) {
				fmt.Fprintf(os.Stderr, "proxiond: follower: %v\n", err)
			},
		}
		if *storeDir != "" {
			wcfg.CheckpointPath = filepath.Join(*storeDir, "watch.cursor")
		}
		f, err := watch.New(wcfg)
		if err != nil {
			srv.Close()
			return err
		}
		follower = f
		srv.SetWatchStats(func() any { return f.Stats() })
		go f.Run()
		fmt.Fprintf(os.Stderr, "following chain from block %d (poll every %s)\n", f.Cursor(), *followInterval)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "proxiond listening on %s (%d shards)\n", *addr, *shards)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()

	if *selfLoad {
		defer srv.Close()
		defer httpSrv.Close()
		if follower != nil {
			defer follower.Stop()
		}
		return selfDrive(pop, *addr, *loadReqs, *loadConc, *loadOut)
	}

	// Serve until SIGINT/SIGTERM, then drain in dependency order: stop
	// the follower first (its cursor checkpoints past the last fully
	// applied block, so no invalidation is left half-done), then stop
	// accepting HTTP, then finish enqueued analyses and close the store.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if follower != nil {
			follower.Stop()
		}
		srv.Close()
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "\n%s: draining...\n", s)
	}
	if follower != nil {
		follower.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := srv.Close(); err != nil {
		return err
	}
	if *verbose {
		ctr := srv.Counters()
		fmt.Fprintf(os.Stderr, "served %d requests: %d analyses, %d coalesced, %d cache hits\n",
			ctr.Requests, ctr.Analyses, ctr.Coalesced, ctr.ResultCacheHits)
	}
	if follower != nil {
		ws := follower.Stats()
		fmt.Fprintf(os.Stderr, "follower stopped at block %d: %d deployments, %d upgrades, %d invalidations\n",
			ws.Cursor, ws.DeploymentsSeen, ws.UpgradesDetected, ws.Invalidations)
	}
	st := srv.StoreStats()
	if st.Entries > 0 {
		fmt.Fprintf(os.Stderr, "verdict store: %d entries, %d appended this run, %d skipped as known\n",
			st.Entries, st.Appended, st.SkippedPuts)
	}
	return nil
}

// selfDrive runs the built-in load harness against the just-started
// server and prints its report to stdout.
func selfDrive(pop *dataset.Population, addr string, requests, concurrency int, outPath string) error {
	base := "http://" + addr
	if strings.HasPrefix(addr, ":") {
		base = "http://127.0.0.1" + addr
	}
	// Wait for the listener.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server did not come up at %s: %w", base, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	var addrs []string
	for _, a := range pop.Chain.Contracts() {
		addrs = append(addrs, a.Hex())
	}
	rep, err := loadtest.Run(loadtest.Config{
		BaseURL:     base,
		Addresses:   addrs,
		Concurrency: concurrency,
		Requests:    requests,
		Seed:        1,
	})
	if err != nil {
		return err
	}
	out, err := rep.WriteIndented()
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	if outPath != "" {
		if err := rep.WriteJSON(outPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote loadtest report to %s\n", outPath)
	}
	return nil
}
