// Command landscape generates the synthetic Ethereum contract population
// and prints the Section 7 findings: growth of proxies over the years,
// hidden contracts, duplication skew, standard adoption, and upgrade
// behaviour.
//
// Usage:
//
//	landscape [-contracts N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/proxion"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "landscape:", err)
		os.Exit(1)
	}
}

func run() error {
	contracts := flag.Int("contracts", 4000, "population size (paper scale: 36M)")
	seed := flag.Int64("seed", 1, "generation seed")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	flag.Parse()

	pop := dataset.Generate(dataset.Config{Seed: *seed, Contracts: *contracts})
	det := proxion.NewDetector(pop.Chain)
	res := det.AnalyzeAll(pop.Registry)

	for _, t := range []*experiments.Table{
		experiments.Figure2(pop),
		experiments.Figure4(pop, res),
		experiments.Table3(pop, det, res),
		experiments.Figure5(pop, res),
		experiments.Table4(res),
		experiments.Figure6(pop, det, res),
		experiments.HiddenProxies(pop, res),
		experiments.RuntimeErrors(pop),
	} {
		fmt.Println(t.Render())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeCSV saves one table as <dir>/<id>.csv with a filesystem-safe name.
func writeCSV(dir string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", dir, err)
	}
	name := strings.ToLower(strings.ReplaceAll(t.ID, " ", "_"))
	name = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '.':
			return r
		default:
			return '-'
		}
	}, name)
	path := filepath.Join(dir, name+".csv")
	if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}
