// Command landscape generates the synthetic Ethereum contract population
// and prints the Section 7 findings: growth of proxies over the years,
// hidden contracts, duplication skew, standard adoption, and upgrade
// behaviour.
//
// Usage:
//
//	landscape [-contracts N] [-seed S]
//	landscape -stream [-retire] [-window N] [-contracts N] [-seed S]
//
// The default mode materializes the whole population before analyzing it.
// -stream pipes the generator straight into the analysis engine and folds
// the tables incrementally, never holding the corpus; with -retire the
// generator also drops fully analyzed contracts, so memory stays bounded
// by the windows at any -contracts — the mode that reproduces the paper's
// proportion tables at millions of contracts.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/internal/etypes"
	"repro/internal/experiments"
	"repro/internal/proxion"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "landscape:", err)
		os.Exit(1)
	}
}

func run() error {
	contracts := flag.Int("contracts", 4000, "population size (paper scale: 36M)")
	seed := flag.Int64("seed", 1, "generation seed")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	stream := flag.Bool("stream", false, "stream generation into analysis instead of materializing the population")
	retire := flag.Bool("retire", false, "with -stream: drop fully analyzed contracts for bounded memory")
	window := flag.Int("window", 0, "with -stream: max in-flight contracts in the pipeline (0 = engine default)")
	cacheCap := flag.Int("cache-capacity", 0, "with -stream: verdict-cache LRU bound (0 = unbounded)")
	flag.Parse()

	if *stream {
		return runStream(*contracts, *seed, *window, *cacheCap, *retire, *csvDir)
	}

	pop := dataset.Generate(dataset.Config{Seed: *seed, Contracts: *contracts})
	det := proxion.NewDetector(pop.Chain)
	res := det.AnalyzeAll(pop.Registry)

	for _, t := range []*experiments.Table{
		experiments.Figure2(pop),
		experiments.Figure4(pop, res),
		experiments.Table3(pop, det, res),
		experiments.Figure5(pop, res),
		experiments.Table4(res),
		experiments.Figure6(pop, det, res),
		experiments.HiddenProxies(pop, res),
		experiments.RuntimeErrors(pop),
	} {
		fmt.Println(t.Render())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// runStream is the bounded-memory path: generator → engine → incremental
// aggregates, with every label dropped as soon as its analysis item has
// been folded. The RuntimeErrors table is batch-only (it re-analyzes a
// materialized population) and is skipped here; everything else renders
// from the Landscape fold. With -retire, proxies that upgrade after their
// analysis report their deployment-time logic — the trade streaming makes.
func runStream(contracts int, seed int64, window, cacheCap int, retire bool, csvDir string) error {
	engineWindow := window
	if engineWindow <= 0 {
		engineWindow = 4096
	}
	s := dataset.GenerateStream(dataset.StreamConfig{
		Config: dataset.Config{Seed: seed, Contracts: contracts},
		Window: 2 * engineWindow,
		Retire: retire,
	})
	defer s.Close()
	fmt.Fprintf(os.Stderr, "streaming %d-contract landscape (seed %d, window %d, retire %v)...\n",
		contracts, seed, engineWindow, retire)

	det := proxion.NewDetector(s.Chain)
	agg := experiments.NewLandscape(s.Chain, s.Registry, det)
	sb := proxion.NewSummaryBuilder()

	// Labels queue between source hand-off and ordered sink emission; the
	// engine's window bounds its depth, and each label is released the
	// moment it is folded.
	var (
		mu        sync.Mutex
		queue     []*dataset.Label
		completed int
	)
	src := proxion.SourceFunc(func() (etypes.Address, bool) {
		l, ok := <-s.C
		if !ok {
			return etypes.Address{}, false
		}
		mu.Lock()
		queue = append(queue, l)
		mu.Unlock()
		return l.Address, true
	})
	sink := proxion.SinkFunc(func(it proxion.Item) {
		mu.Lock()
		l := queue[0]
		queue = queue[1:]
		mu.Unlock()
		agg.Observe(l, it)
		sb.Emit(it)
		completed++
		s.Advance(completed)
	})
	snap := det.AnalyzeStream(src, s.Registry, sink, proxion.AnalyzeOptions{
		Window:        engineWindow,
		CacheCapacity: cacheCap,
	})
	fmt.Fprintf(os.Stderr, "analyzed %d contracts (%.0f contracts/s), %d retired\n",
		snap.Contracts, snap.ContractsPerSec, s.Retired())

	sum := sb.Summary(snap)
	fmt.Printf("summary: %d contracts, %d proxies (%.1f%%), %d unresolved\n\n",
		sum.Contracts, sum.Proxies, 100*sum.ProxyShare(), sum.Unresolved)

	for _, t := range []*experiments.Table{
		agg.Figure2(),
		agg.Figure4(),
		agg.Table3(),
		agg.Figure5(),
		agg.Table4(),
		agg.Figure6(),
		agg.HiddenProxies(),
	} {
		fmt.Println(t.Render())
		if csvDir != "" {
			if err := writeCSV(csvDir, t); err != nil {
				return err
			}
		}
	}
	fmt.Fprintln(os.Stderr, "note: RuntimeErrors (Section 7.1) requires a materialized population; run without -stream for it")
	return nil
}

// writeCSV saves one table as <dir>/<id>.csv with a filesystem-safe name.
func writeCSV(dir string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", dir, err)
	}
	name := strings.ToLower(strings.ReplaceAll(t.ID, " ", "_"))
	name = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '.':
			return r
		default:
			return '-'
		}
	}, name)
	path := filepath.Join(dir, name+".csv")
	if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}
