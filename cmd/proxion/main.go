// Command proxion runs the full analysis pipeline over a generated chain
// snapshot: identify every proxy contract (including hidden ones), locate
// logic contracts and their history, and report function and storage
// collisions per pair.
//
// Usage:
//
//	proxion [-contracts N] [-seed S] [-v] [-collisions-only]
//	        [-window N] [-cache-capacity N] [-static=false]
//	        [-resilient] [-faults PROFILE] [-fault-seed S] [-fault-depth D]
//	        [-retries N] [-rpc-timeout D] [-backoff D] [-inflight N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/chain"
	"repro/internal/dataset"
	"repro/internal/faultchain"
	"repro/internal/proxion"
)

// profileNames lists the -faults values the CLI accepts.
func profileNames() string {
	var names []string
	for _, p := range faultchain.Profiles() {
		names = append(names, p.Name)
	}
	return strings.Join(append(names, faultchain.Outage().Name), ", ")
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "proxion:", err)
		os.Exit(1)
	}
}

func run() error {
	contracts := flag.Int("contracts", 4000, "population size to generate and analyze")
	seed := flag.Int64("seed", 1, "generation seed")
	verbose := flag.Bool("v", false, "print every detected proxy")
	collisionsOnly := flag.Bool("collisions-only", false, "print only pairs with collisions")
	jsonOut := flag.Bool("json", false, "emit a machine-readable summary instead of text")
	window := flag.Int("window", 0, "max in-flight contracts in the analysis pipeline (0 = engine default)")
	cacheCap := flag.Int("cache-capacity", 0, "verdict-cache LRU bound in distinct bytecodes (0 = unbounded)")
	staticOn := flag.Bool("static", true, "structural near-clone promotion (second-level verdict-cache key)")
	resilient := flag.Bool("resilient", false, "route node reads through the resilient client even with faults off")
	faults := flag.String("faults", "off", "fault-injection profile: off, "+profileNames())
	faultSeed := flag.Int64("fault-seed", 1, "fault schedule seed")
	faultDepth := flag.Int("fault-depth", 0, "override the profile's fault depth (0 keeps the profile default)")
	retries := flag.Int("retries", 0, "max retries per node read (0 = client default)")
	rpcTimeout := flag.Duration("rpc-timeout", 0, "per-read timeout (0 = client default)")
	backoff := flag.Duration("backoff", 0, "base retry backoff (0 = client default)")
	inflight := flag.Int("inflight", 0, "max concurrent node reads (0 = client default)")
	flag.Parse()

	// Progress goes to stderr so -json output stays machine-consumable.
	fmt.Fprintf(os.Stderr, "generating %d-contract chain snapshot (seed %d)...\n", *contracts, *seed)
	pop := dataset.Generate(dataset.Config{Seed: *seed, Contracts: *contracts})
	fmt.Fprintf(os.Stderr, "chain height %d, %d contracts alive\n", pop.Chain.CurrentBlock(), len(pop.Chain.Contracts()))

	// Pick the chain view: the raw snapshot, or the resilient client —
	// optionally over a fault-injecting backend for chaos runs.
	var reader chain.Reader = pop.Chain
	if *faults != "off" || *resilient {
		copts := faultchain.Options{
			MaxRetries:  *retries,
			Timeout:     *rpcTimeout,
			BackoffBase: *backoff,
			MaxInFlight: *inflight,
		}
		var sched *faultchain.Schedule
		if *faults != "off" {
			p, ok := faultchain.ProfileByName(*faults)
			if !ok {
				return fmt.Errorf("unknown fault profile %q (have: off, %s)", *faults, profileNames())
			}
			if *faultDepth > 0 {
				p.Depth = *faultDepth
			}
			s := faultchain.NewSchedule(p, *faultSeed)
			sched = &s
			fmt.Fprintf(os.Stderr, "injecting faults: profile %s, seed %d, depth %d\n", p.Name, *faultSeed, p.Depth)
		}
		client, _ := faultchain.NewResilientReader(pop.Chain, sched, copts)
		reader = client
	}

	det := proxion.NewDetector(reader)
	res := det.AnalyzeAllWithOptions(pop.Registry, proxion.AnalyzeOptions{
		Window:            *window,
		CacheCapacity:     *cacheCap,
		DisableStructural: !*staticOn,
	})

	if *jsonOut {
		out, err := proxion.Summarize(res).MarshalIndentJSON()
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}

	proxies := res.Proxies()
	if st := res.Stats; st != nil {
		fmt.Printf("\nanalyzed %d contracts in %s (%.0f contracts/s)\n",
			st.Contracts, (time.Duration(st.WallMS * float64(time.Millisecond))).Round(time.Millisecond),
			st.ContractsPerSec)
		fmt.Printf("pipeline: %d emulations, %d cache hits (%.1f%% hit rate), %d aborts, %d getStorageAt calls\n",
			st.Emulations, st.CacheHits, 100*st.CacheHitRate, st.EmulationAborts, st.StorageAPICalls)
		if st.StructuralHits != 0 || st.StructuralRejects != 0 {
			fmt.Printf("structural: %d near-clone promotions, %d static summaries, %d rejects\n",
				st.StructuralHits, st.StaticSummaries, st.StructuralRejects)
		}
		if st.Retries != 0 || st.BreakerTrips != 0 || st.Unresolved != 0 {
			fmt.Printf("resilience: %d read retries, %d breaker trips, %d unresolved contracts\n",
				st.Retries, st.BreakerTrips, st.Unresolved)
		}
		for _, stage := range st.Stages {
			fmt.Printf("  stage %-16s workers=%-3d processed=%-6d busy=%s\n",
				stage.Name, stage.Workers, stage.Processed,
				(time.Duration(stage.BusyMS * float64(time.Millisecond))).Round(time.Millisecond))
		}
	}
	fmt.Printf("proxies: %d (%.1f%%)\n", len(proxies),
		100*float64(len(proxies))/float64(len(res.Reports)))

	byStandard := make(map[proxion.Standard]int)
	var emulationErrs int
	for _, rep := range res.Reports {
		if rep.IsProxy {
			byStandard[rep.Standard]++
		}
		if rep.EmulationErr != nil {
			emulationErrs++
		}
	}
	fmt.Printf("standards: EIP-1167=%d EIP-1822=%d EIP-1967=%d others=%d\n",
		byStandard[proxion.StandardEIP1167], byStandard[proxion.StandardEIP1822],
		byStandard[proxion.StandardEIP1967], byStandard[proxion.StandardOther])
	fmt.Printf("emulation errors: %d\n\n", emulationErrs)

	if *verbose && !*collisionsOnly {
		for _, rep := range proxies {
			fmt.Printf("proxy %s -> logic %s (%s, %s)\n  %s\n",
				rep.Address, rep.Logic, rep.Target, rep.Standard, rep.Reason)
		}
		fmt.Println()
	}

	var funcPairs, storPairs, verified int
	for _, pa := range res.Pairs {
		hasFunc := len(pa.Functions) > 0
		hasStor := len(pa.Storage) > 0
		if hasFunc {
			funcPairs++
		}
		if hasStor {
			storPairs++
		}
		if pa.ExploitVerified {
			verified++
		}
		if (*verbose || *collisionsOnly) && (hasFunc || hasStor) {
			fmt.Printf("pair %s / %s:\n", pa.Proxy, pa.Logic)
			for _, fc := range pa.Functions {
				label := fmt.Sprintf("selector 0x%x", fc.Selector)
				if fc.ProxyProto != "" {
					label += fmt.Sprintf(" (%s vs %s)", fc.ProxyProto, fc.LogicProto)
				}
				fmt.Printf("  function collision: %s\n", label)
			}
			for _, sc := range pa.Storage {
				fmt.Printf("  storage collision: slot %s proxy[%d:%d) vs logic[%d:%d) exploitable=%v verified=%v\n",
					sc.Slot, sc.ProxyOffset, sc.ProxyOffset+sc.ProxySize,
					sc.LogicOffset, sc.LogicOffset+sc.LogicSize, sc.Exploitable, sc.Verified)
			}
		}
	}
	fmt.Printf("collision summary: %d pairs with function collisions, %d with storage collisions, %d verified exploits\n",
		funcPairs, storPairs, verified)
	return nil
}
