// Command proxion runs the full analysis pipeline over a generated chain
// snapshot: identify every proxy contract (including hidden ones), locate
// logic contracts and their history, and report function and storage
// collisions per pair.
//
// Usage:
//
//	proxion [-contracts N] [-seed S] [-v] [-collisions-only]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/proxion"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "proxion:", err)
		os.Exit(1)
	}
}

func run() error {
	contracts := flag.Int("contracts", 4000, "population size to generate and analyze")
	seed := flag.Int64("seed", 1, "generation seed")
	verbose := flag.Bool("v", false, "print every detected proxy")
	collisionsOnly := flag.Bool("collisions-only", false, "print only pairs with collisions")
	jsonOut := flag.Bool("json", false, "emit a machine-readable summary instead of text")
	flag.Parse()

	fmt.Printf("generating %d-contract chain snapshot (seed %d)...\n", *contracts, *seed)
	pop := dataset.Generate(dataset.Config{Seed: *seed, Contracts: *contracts})
	fmt.Printf("chain height %d, %d contracts alive\n", pop.Chain.CurrentBlock(), len(pop.Chain.Contracts()))

	det := proxion.NewDetector(pop.Chain)
	start := time.Now()
	res := det.AnalyzeAll(pop.Registry)
	elapsed := time.Since(start)

	if *jsonOut {
		out, err := proxion.Summarize(res).MarshalIndentJSON()
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}

	proxies := res.Proxies()
	perSec := float64(len(res.Reports)) / elapsed.Seconds()
	fmt.Printf("\nanalyzed %d contracts in %s (%.0f contracts/s)\n",
		len(res.Reports), elapsed.Round(time.Millisecond), perSec)
	fmt.Printf("proxies: %d (%.1f%%)\n", len(proxies),
		100*float64(len(proxies))/float64(len(res.Reports)))

	byStandard := make(map[proxion.Standard]int)
	var emulationErrs int
	for _, rep := range res.Reports {
		if rep.IsProxy {
			byStandard[rep.Standard]++
		}
		if rep.EmulationErr != nil {
			emulationErrs++
		}
	}
	fmt.Printf("standards: EIP-1167=%d EIP-1822=%d EIP-1967=%d others=%d\n",
		byStandard[proxion.StandardEIP1167], byStandard[proxion.StandardEIP1822],
		byStandard[proxion.StandardEIP1967], byStandard[proxion.StandardOther])
	fmt.Printf("emulation errors: %d\n\n", emulationErrs)

	if *verbose && !*collisionsOnly {
		for _, rep := range proxies {
			fmt.Printf("proxy %s -> logic %s (%s, %s)\n  %s\n",
				rep.Address, rep.Logic, rep.Target, rep.Standard, rep.Reason)
		}
		fmt.Println()
	}

	var funcPairs, storPairs, verified int
	for _, pa := range res.Pairs {
		hasFunc := len(pa.Functions) > 0
		hasStor := len(pa.Storage) > 0
		if hasFunc {
			funcPairs++
		}
		if hasStor {
			storPairs++
		}
		if pa.ExploitVerified {
			verified++
		}
		if (*verbose || *collisionsOnly) && (hasFunc || hasStor) {
			fmt.Printf("pair %s / %s:\n", pa.Proxy, pa.Logic)
			for _, fc := range pa.Functions {
				label := fmt.Sprintf("selector 0x%x", fc.Selector)
				if fc.ProxyProto != "" {
					label += fmt.Sprintf(" (%s vs %s)", fc.ProxyProto, fc.LogicProto)
				}
				fmt.Printf("  function collision: %s\n", label)
			}
			for _, sc := range pa.Storage {
				fmt.Printf("  storage collision: slot %s proxy[%d:%d) vs logic[%d:%d) exploitable=%v verified=%v\n",
					sc.Slot, sc.ProxyOffset, sc.ProxyOffset+sc.ProxySize,
					sc.LogicOffset, sc.LogicOffset+sc.LogicSize, sc.Exploitable, sc.Verified)
			}
		}
	}
	fmt.Printf("collision summary: %d pairs with function collisions, %d with storage collisions, %d verified exploits\n",
		funcPairs, storPairs, verified)
	return nil
}
