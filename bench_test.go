// Package repro_test holds the benchmark harness that regenerates every
// table and figure in the paper's evaluation. Each BenchmarkTableN /
// BenchmarkFigureN times the corresponding experiment and, on the first
// iteration, prints the reproduced rows next to the paper's reported
// values. Run with:
//
//	go test -bench=. -benchmem
//
// The throughput-critical benchmarks (streaming pipeline, dedup ablation,
// storage slicing) are rebased onto the shared workload catalogue in
// internal/bench, so `go test -bench` and the `proxbench` regression gate
// measure the identical op; BenchmarkWorkloads runs the whole catalogue.
package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/abi"
	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/etypes"
	"repro/internal/experiments"
	"repro/internal/keccak"
	"repro/internal/proxion"
	"repro/internal/sigminer"
	"repro/internal/solc"
	"repro/internal/u256"
)

// benchScale is the landscape size used by the table/figure benchmarks.
// The paper operates on 36M contracts; proportions, not absolute counts,
// are the reproduction target.
const benchScale = 4000

var (
	benchOnce   sync.Once
	benchPop    *dataset.Population
	benchDet    *proxion.Detector
	benchResult *proxion.Result

	corpusOnce sync.Once
	benchCorp  *dataset.AccuracyCorpus

	printOnce sync.Map
)

func population(b *testing.B) (*dataset.Population, *proxion.Detector, *proxion.Result) {
	b.Helper()
	benchOnce.Do(func() {
		benchPop = dataset.Generate(dataset.Config{Seed: 1, Contracts: benchScale})
		benchDet = proxion.NewDetector(benchPop.Chain)
		benchResult = benchDet.AnalyzeAll(benchPop.Registry)
	})
	return benchPop, benchDet, benchResult
}

func corpus(b *testing.B) *dataset.AccuracyCorpus {
	b.Helper()
	corpusOnce.Do(func() { benchCorp = dataset.GenerateAccuracyCorpus() })
	return benchCorp
}

// report prints a table once per benchmark name, outside the timed region.
func report(b *testing.B, t *experiments.Table) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(b.Name(), true); !done {
		fmt.Println()
		fmt.Println(t.Render())
	}
}

// BenchmarkTable1Coverage regenerates the tool-coverage matrix (Table 1).
func BenchmarkTable1Coverage(b *testing.B) {
	pop, _, _ := population(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Table1(pop)
	}
	b.StopTimer()
	report(b, t)
}

// BenchmarkFigure2Landscape regenerates the availability breakdown (Figure 2).
func BenchmarkFigure2Landscape(b *testing.B) {
	pop, _, _ := population(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Figure2(pop)
	}
	b.StopTimer()
	report(b, t)
}

// BenchmarkTable2Accuracy regenerates the accuracy comparison (Table 2,
// Section 6.3): all three tools run over the labeled corpus.
func BenchmarkTable2Accuracy(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	var res experiments.Table2Result
	for i := 0; i < b.N; i++ {
		res = experiments.Table2(c)
	}
	b.StopTimer()
	report(b, res.Table())
}

// BenchmarkEffectivenessSanctuary reproduces the Section 6.2 comparison on
// the all-source subset (Proxion vs USCHunt).
func BenchmarkEffectivenessSanctuary(b *testing.B) {
	pop, _, _ := population(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.EffectivenessSanctuary(pop)
	}
	b.StopTimer()
	report(b, t)
}

// BenchmarkEffectivenessCrush reproduces the Section 6.2 comparison on the
// mixed dataset (Proxion vs CRUSH).
func BenchmarkEffectivenessCrush(b *testing.B) {
	pop, _, _ := population(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.EffectivenessCrush(pop)
	}
	b.StopTimer()
	report(b, t)
}

// BenchmarkFigure4Pairs regenerates the pair-availability series (Figure 4).
func BenchmarkFigure4Pairs(b *testing.B) {
	pop, _, res := population(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Figure4(pop, res)
	}
	b.StopTimer()
	report(b, t)
}

// BenchmarkTable3Collisions regenerates collisions-per-year (Table 3).
func BenchmarkTable3Collisions(b *testing.B) {
	pop, det, res := population(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Table3(pop, det, res)
	}
	b.StopTimer()
	report(b, t)
}

// BenchmarkFigure5Duplicates regenerates the bytecode-uniqueness skew
// (Figure 5).
func BenchmarkFigure5Duplicates(b *testing.B) {
	pop, _, res := population(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Figure5(pop, res)
	}
	b.StopTimer()
	report(b, t)
}

// BenchmarkTable4Standards regenerates the design-standard split (Table 4).
func BenchmarkTable4Standards(b *testing.B) {
	_, _, res := population(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Table4(res)
	}
	b.StopTimer()
	report(b, t)
}

// BenchmarkFigure6Upgrades regenerates the upgrade-count distribution
// (Figure 6) via Algorithm 1 over every storage proxy.
func BenchmarkFigure6Upgrades(b *testing.B) {
	pop, det, res := population(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Figure6(pop, det, res)
	}
	b.StopTimer()
	report(b, t)
}

// BenchmarkProxyCheck measures the core single-contract detection latency
// (Section 6.1: 6.4 ms/contract, 156.3 contracts/s on the paper's server).
func BenchmarkProxyCheck(b *testing.B) {
	pop, det, _ := population(b)
	addrs := pop.Chain.Contracts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Check(addrs[i%len(addrs)])
	}
}

// BenchmarkProxyCheckHidden isolates detection of a hidden storage proxy
// (delegating fallback, full emulation path).
func BenchmarkProxyCheckHidden(b *testing.B) {
	pop, det, _ := population(b)
	var target etypes.Address
	for _, l := range pop.Labels {
		if l.Kind == dataset.KindAudiusProxy {
			target = l.Address
			break
		}
	}
	if target.IsZero() {
		b.Skip("no audius proxy in this population")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !det.Check(target).IsProxy {
			b.Fatal("detection regressed")
		}
	}
}

// BenchmarkLogicHistory measures Algorithm 1's archive-call efficiency
// (Section 6.1: ~26 getStorageAt calls per proxy).
func BenchmarkLogicHistory(b *testing.B) {
	pop, det, res := population(b)
	var proxies []proxion.Report
	for _, rep := range res.Proxies() {
		if rep.Target == proxion.TargetStorage {
			proxies = append(proxies, rep)
		}
	}
	if len(proxies) == 0 {
		b.Skip("no storage proxies")
	}
	pop.Chain.ResetAPICalls()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := proxies[i%len(proxies)]
		det.LogicHistory(rep.Address, rep.ImplSlot)
	}
	b.StopTimer()
	calls := float64(pop.Chain.APICalls()) / float64(b.N)
	b.ReportMetric(calls, "getStorageAt/op")
}

// BenchmarkFunctionCollision measures per-pair function-collision analysis
// (Section 6.1: 6.7 ms/pair on the paper's server).
func BenchmarkFunctionCollision(b *testing.B) {
	pop, det, res := population(b)
	if len(res.Pairs) == 0 {
		b.Skip("no pairs")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa := res.Pairs[i%len(res.Pairs)]
		det.AnalyzePair(pa.Proxy, pa.Logic, pop.Registry)
	}
}

// BenchmarkStorageCollision measures the slicing + symbolic width-inference
// engine on the Audius pair (Section 6.1: 1.3 min/pair for full CRUSH; our
// engine is narrower and faster).
func BenchmarkStorageCollision(b *testing.B) {
	proxySrc, logicSrc := audiusFixture()
	proxyCode := solc.MustCompile(proxySrc)
	logicCode := solc.MustCompile(logicSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pAcc := proxion.ExtractStorageAccesses(proxyCode)
		lAcc := proxion.ExtractStorageAccesses(logicCode)
		if len(proxion.StorageCollisions(pAcc, lAcc)) == 0 {
			b.Fatal("collision lost")
		}
	}
}

// BenchmarkStorageSlicingCorpus measures the same slicing engine across
// every generated proxy/logic pair via the shared collision workload.
func BenchmarkStorageSlicingCorpus(b *testing.B) {
	runSharedWorkload(b, "collision/storage-slicing")
}

// BenchmarkSigminerThroughput measures selector-collision search speed —
// the Section 2.3 "600M attempts in 1.5h on a laptop" experiment, scaled to
// a 2-byte prefix.
func BenchmarkSigminerThroughput(b *testing.B) {
	target := keccak.Selector("free_ether_withdrawal()")
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		res, _ := sigminer.Mine(target, "impl", 2, 200_000)
		total += res.Attempts
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/float64(b.N), "hashes/op")
}

// BenchmarkAblationNoDisasmFilter measures design choice 1 (Ablation 1).
func BenchmarkAblationNoDisasmFilter(b *testing.B) {
	pop, _, _ := population(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.AblationDisasmFilter(pop)
	}
	b.StopTimer()
	report(b, t)
}

// BenchmarkAblationSelectorChoice measures design choice 2 (Ablation 2).
func BenchmarkAblationSelectorChoice(b *testing.B) {
	pop, _, _ := population(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.AblationSelectorChoice(pop)
	}
	b.StopTimer()
	report(b, t)
}

// BenchmarkAblationNaiveHistoryScan measures design choice 3 (Ablation 3).
func BenchmarkAblationNaiveHistoryScan(b *testing.B) {
	pop, _, _ := population(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.AblationHistorySearch(pop)
	}
	b.StopTimer()
	report(b, t)
}

// BenchmarkAblationNaivePush4 measures design choice 4 (Ablation 4).
func BenchmarkAblationNaivePush4(b *testing.B) {
	pop, _, _ := population(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.AblationNaivePush4(pop)
	}
	b.StopTimer()
	report(b, t)
}

// BenchmarkAblationNoDedup measures design choice 5 (Ablation 5).
func BenchmarkAblationNoDedup(b *testing.B) {
	pop, _, _ := population(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.AblationDedup(pop)
	}
	b.StopTimer()
	report(b, t)
}

// BenchmarkExtensionDiamond measures the Section 8.2 history-assisted
// diamond detection extension.
func BenchmarkExtensionDiamond(b *testing.B) {
	pop, _, _ := population(b)
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.ExtensionDiamond(pop)
	}
	b.StopTimer()
	report(b, t)
}

// BenchmarkAnalyzeAll measures the end-to-end pipeline throughput over the
// whole landscape (Section 6.1's 36M-in-65h headline, scaled).
func BenchmarkAnalyzeAll(b *testing.B) {
	pop, _, _ := population(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := proxion.NewDetector(pop.Chain)
		res := det.AnalyzeAll(pop.Registry)
		if len(res.Proxies()) == 0 {
			b.Fatal("no proxies found")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(pop.Chain.Contracts())), "contracts/op")
}

// BenchmarkPipelineAnalyzeAll measures the streaming engine end to end —
// staged concurrency plus bytecode-dedup memoization — via the shared
// pipeline/stream-maxw workload (fresh detector per op, cold cache), so
// this number and the proxbench gate track the same code path.
func BenchmarkPipelineAnalyzeAll(b *testing.B) {
	runSharedWorkload(b, "pipeline/stream-maxw")
}

// BenchmarkAblationNoDedupCache is the same engine with the dedup cache
// disabled: every duplicate pays a full emulation. The gap to
// BenchmarkPipelineAnalyzeAll is the throughput the cache buys on a
// duplicate-dominated landscape (Figure 5's 98.7% skew, scaled).
func BenchmarkAblationNoDedupCache(b *testing.B) {
	runSharedWorkload(b, "pipeline/stream-maxw-nocache")
}

// BenchmarkAnalyzeAllBarrier reproduces the pre-pipeline shape — a
// detection worker pool, a full barrier, then a sequential pair loop — as
// the baseline the streaming engine is measured against.
func BenchmarkAnalyzeAllBarrier(b *testing.B) {
	pop, _, _ := population(b)
	addrs := pop.Chain.Contracts()
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := proxion.NewDetector(pop.Chain)
		reports := make([]proxion.Report, len(addrs))
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range next {
					reports[j] = det.Check(addrs[j])
				}
			}()
		}
		for j := range addrs {
			next <- j
		}
		close(next)
		wg.Wait()
		proxies := 0
		for _, rep := range reports {
			if rep.IsProxy && !rep.Logic.IsZero() {
				det.AnalyzePair(rep.Address, rep.Logic, pop.Registry)
				proxies++
			}
		}
		if proxies == 0 {
			b.Fatal("no proxies found")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(addrs))*float64(b.N)/b.Elapsed().Seconds(), "contracts/s")
}

// audiusFixture rebuilds the Listing 2 pair for microbenchmarks.
func audiusFixture() (*solc.Contract, *solc.Contract) {
	implSlot := etypes.HashFromWord(u256.One())
	proxy := &solc.Contract{
		Name: "AudiusProxyBench",
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "logic", Type: solc.TypeAddress},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "proxyOwner"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "owner"}}},
			{ABI: abi.Function{Name: "upgradeTo", Params: []string{"address"}},
				Body: []solc.Stmt{
					solc.RequireCallerIs{Var: "owner"},
					solc.AssignArg{Var: "logic", Arg: 0},
				}},
		},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot},
	}
	logic := &solc.Contract{
		Name: "AudiusLogicBench",
		Vars: []solc.Var{
			{Name: "initialized", Type: solc.TypeBool},
			{Name: "initializing", Type: solc.TypeBool},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "initialize"}, Body: []solc.Stmt{
				solc.RequireInitializable{Initialized: "initialized", Initializing: "initializing"},
				solc.AssignConst{Var: "initialized", Value: u256.One()},
				solc.AssignCallerToSlot{Slot: etypes.Hash{}, Offset: 0, Size: 20},
			}},
		},
	}
	return proxy, logic
}

// BenchmarkMultiChain measures the Section 8.2 cross-network sweep: five
// EVM chains analyzed by the unchanged pipeline.
func BenchmarkMultiChain(b *testing.B) {
	b.ResetTimer()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.MultiChain(900, 500)
	}
	b.StopTimer()
	report(b, t)
}

// runSharedWorkload times one catalogue workload from internal/bench under
// the go-test harness at the full-profile scale, then re-reports its
// deterministic counters as benchmark metrics. Setup (corpus generation)
// happens before the timer starts, exactly as in the proxbench runner.
func runSharedWorkload(b *testing.B, name string) {
	b.Helper()
	w, ok := bench.FindWorkload(bench.Full, name)
	if !ok {
		b.Fatalf("workload %s not in the internal/bench catalogue", name)
	}
	inst := w.Setup(1, w.Scale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.Op()
	}
	b.StopTimer()
	reportWorkloadCounters(b, w, inst)
}

// reportWorkloadCounters surfaces the workload's headline counters the way
// the hand-written benchmarks used to (throughput, cache hit rate).
func reportWorkloadCounters(b *testing.B, w bench.Workload, inst bench.Instance) {
	b.Helper()
	if inst.Counters == nil {
		return
	}
	c := inst.Counters()
	if contracts := c["contracts"]; contracts > 0 {
		b.ReportMetric(float64(contracts)*float64(b.N)/b.Elapsed().Seconds(), "contracts/s")
	}
	if lookups := c["cache_hits"] + c["emulations"]; lookups > 0 {
		b.ReportMetric(100*float64(c["cache_hits"])/float64(lookups), "%hit")
	}
	if steps := c["evm_steps"]; steps > 0 {
		b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
	}
}

// BenchmarkWorkloads runs the entire shared catalogue at the quick-profile
// scale — the same ops proxbench gates on — so a plain `go test -bench
// Workloads .` reproduces the PR gate's measurements.
func BenchmarkWorkloads(b *testing.B) {
	for _, w := range bench.Suite(bench.Quick) {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			inst := w.Setup(1, w.Scale)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst.Op()
			}
			b.StopTimer()
			reportWorkloadCounters(b, w, inst)
		})
	}
}
