# Standard entry points; `make ci` is what the workflow runs on every
# push, `make fuzz` is the scheduled deep run, `make bench-gate` is the
# pull-request performance gate.

.PHONY: build vet test short race bench bench-gate bench-baseline chaos ci fuzz

# Per-target budget for the native fuzz engines in `make fuzz`.
FUZZTIME ?= 60s
# Number of generated chains the nightly differential sweep checks.
ORACLE_SWEEP ?= 500
# Extra corpus seeds for the nightly chaos sweep (0 = pinned seeds only).
CHAOS_SWEEP ?= 0
# Allowed relative median regression for the performance gate (0.30 = +30%).
BENCH_THRESHOLD ?= 0.30

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Tier-1 gate: small fixed corpora only, wide sweeps skipped.
short:
	go test -short ./...

race:
	go test -race -short ./...

bench:
	go test -run '^$$' -bench . -benchmem ./...

# Performance gate: run the quick deterministic suite (twice, best median
# kept) and diff it against the checked-in baseline; non-zero exit on a
# regression past BENCH_THRESHOLD.
bench-gate:
	go run ./cmd/proxbench -quick -threshold $(BENCH_THRESHOLD) compare

# Refresh the checked-in quick baseline (run on an otherwise idle machine,
# then commit bench/baseline.json with an explanation of what moved).
bench-baseline:
	go run ./cmd/proxbench -quick -repeats 3 -out bench/baseline.json

# Chaos matrix under the race detector: every fault profile x pinned seed
# through the whole pipeline, plus the fault-parity oracle layers and the
# resilient-client concurrency tests. CHAOS_SWEEP=N adds N fresh seeds.
chaos:
	CHAOS_SWEEP=$(CHAOS_SWEEP) go test -race ./internal/faultchain -count=1 -timeout 30m
	go test -race ./internal/gen/oracle -run 'Fault|MinimizeFaultSchedule' -count=1 -timeout 30m

ci: build vet race

# Deep verification: the wide differential-oracle sweep over freshly
# generated chains, then every native fuzz target (each seeded from the
# generator's corpus) for FUZZTIME apiece.
fuzz:
	ORACLE_SWEEP=$(ORACLE_SWEEP) go test ./internal/gen/oracle -run TestOracleSweep -count=1 -timeout 30m
	go test ./internal/gen/oracle -run '^$$' -fuzz FuzzGeneratorOracle -fuzztime $(FUZZTIME)
	go test ./internal/gen/oracle -run '^$$' -fuzz FuzzFaultSchedule -fuzztime $(FUZZTIME)
	go test ./internal/u256 -run '^$$' -fuzz FuzzU256VsBigInt -fuzztime $(FUZZTIME)
	go test ./internal/evm -run '^$$' -fuzz FuzzExecuteArbitraryBytecode -fuzztime $(FUZZTIME)
	go test ./internal/evm -run '^$$' -fuzz FuzzProxyProbe -fuzztime $(FUZZTIME)
