# Standard entry points; `make ci` is what the workflow runs on every
# push, `make fuzz` is the scheduled deep run, `make bench-gate` is the
# pull-request performance gate.

.PHONY: build vet test short race bench bench-gate bench-baseline chaos ci fuzz soak serve lint watch parity

# Per-target budget for the native fuzz engines in `make fuzz`.
FUZZTIME ?= 60s
# Number of generated chains the nightly differential sweep checks.
ORACLE_SWEEP ?= 500
# Extra corpus seeds for the nightly chaos sweep (0 = pinned seeds only).
CHAOS_SWEEP ?= 0
# Extra timeline seeds for the nightly watch sweep (0 = pinned seeds only).
WATCH_SWEEP ?= 0
# Fresh corpus seeds for the nightly interpreter-parity widening.
INTERP_SWEEP ?= 100
# Path for the watch sweep's per-cell follower stats JSON (empty = none).
WATCH_REPORT ?=
# Allowed relative median regression for the performance gate (0.30 = +30%).
BENCH_THRESHOLD ?= 0.30
# Corpus size for the streaming soak and its asserted peak-heap ceiling.
# A 1M run measures ~0.6 GiB peak heap; the 2 GiB ceiling leaves headroom
# for GC pacing noise while still catching per-contract retention leaks.
SOAK_CONTRACTS ?= 1000000
SOAK_MAX_HEAP_MB ?= 2048

build:
	go build ./...

vet:
	go vet ./...

# Custom vet passes. readerpanic enforces the chain.Reader error
# contract: every Reader read must run under chain.CaptureReadError.
lint:
	go run ./cmd/readerpanic .

test:
	go test ./...

# Tier-1 gate: small fixed corpora only, wide sweeps skipped.
short:
	go test -short ./...

race:
	go test -race -short ./...

bench:
	go test -run '^$$' -bench . -benchmem ./...

# Performance gate: run the quick deterministic suite (twice, best median
# kept) and diff it against the checked-in baseline; non-zero exit on a
# regression past BENCH_THRESHOLD.
bench-gate:
	go run ./cmd/proxbench -quick -threshold $(BENCH_THRESHOLD) compare

# Refresh the checked-in quick baseline (run on an otherwise idle machine,
# then commit bench/baseline.json with an explanation of what moved).
bench-baseline:
	go run ./cmd/proxbench -quick -repeats 3 -out bench/baseline.json

# Service gate: the proxiond stack (verdict store + sharded serve layer)
# under the race detector — crash/restart recovery, K-concurrent
# coalescing, the shard-concurrency matrix, and the in-process loadtest.
# LOADTEST_REPORT (a path) makes the loadtest write its p50/p99 JSON
# artifact; the nightly job raises LOADTEST_REQUESTS/LOADTEST_CONCURRENCY.
serve:
	LOADTEST_REPORT=$(LOADTEST_REPORT) go test -race ./internal/store ./internal/serve/... -count=1 -timeout 20m

# Chaos matrix under the race detector: every fault profile x pinned seed
# through the whole pipeline, plus the fault-parity oracle layers and the
# resilient-client concurrency tests. CHAOS_SWEEP=N adds N fresh seeds.
chaos:
	CHAOS_SWEEP=$(CHAOS_SWEEP) go test -race ./internal/faultchain -count=1 -timeout 30m
	go test -race ./internal/gen/oracle -run 'Fault|MinimizeFaultSchedule' -count=1 -timeout 30m

# Live-following gate under the race detector: the chain follower
# replayed block-by-block over scripted upgrade timelines — parity vs
# cold end-state analysis (clean and under chaos), the landscape-scale
# surgical-invalidation proof, and the reorg/beacon/restart edge cases.
# WATCH_SWEEP=N adds N fresh timeline seeds; WATCH_REPORT (a path) makes
# the sweep write its per-cell follower stats JSON artifact.
watch:
	WATCH_SWEEP=$(WATCH_SWEEP) WATCH_REPORT=$(WATCH_REPORT) go test -race ./internal/watch -count=1 -timeout 30m

# Interpreter lockstep gate under the race detector: the two EVM loops
# (pre-decoded fast path vs the retained reference) executed against
# identical state and diffed on every observable — structlog traces, call
# trees, outputs, gas, and state-mutation order — over hand-written fused
# idioms, boundary sweeps, and the full generator taxonomy.
# INTERP_SWEEP=N widens the nightly run with N fresh corpus seeds.
parity:
	go test -race ./internal/evm/parity -count=1 -timeout 20m
	INTERP_SWEEP=$(INTERP_SWEEP) go test -race ./internal/gen/oracle \
		-run 'TestInterpParity' -count=1 -timeout 30m

# Bounded-memory streaming soak: one long stream-landscape run (default
# 1M contracts, ~6 minutes) with per-item latency percentiles and peak
# heap/RSS in the report; exits non-zero if peak heap crosses the
# ceiling. The nightly job runs this; PRs stay on the quick bench-gate.
soak:
	go run ./cmd/proxbench soak -contracts $(SOAK_CONTRACTS) \
		-max-heap-mb $(SOAK_MAX_HEAP_MB) -out BENCH_soak.json

ci: build vet race

# Deep verification: the wide differential-oracle sweep over freshly
# generated chains, then every native fuzz target (each seeded from the
# generator's corpus) for FUZZTIME apiece.
fuzz:
	ORACLE_SWEEP=$(ORACLE_SWEEP) go test ./internal/gen/oracle -run TestOracleSweep -count=1 -timeout 30m
	go test ./internal/gen/oracle -run '^$$' -fuzz FuzzGeneratorOracle -fuzztime $(FUZZTIME)
	go test ./internal/gen/oracle -run '^$$' -fuzz FuzzFaultSchedule -fuzztime $(FUZZTIME)
	go test ./internal/u256 -run '^$$' -fuzz FuzzU256VsBigInt -fuzztime $(FUZZTIME)
	go test ./internal/evm -run '^$$' -fuzz FuzzExecuteArbitraryBytecode -fuzztime $(FUZZTIME)
	go test ./internal/evm -run '^$$' -fuzz FuzzProxyProbe -fuzztime $(FUZZTIME)
	go test ./internal/evm/parity -run '^$$' -fuzz FuzzInterpParity -fuzztime $(FUZZTIME)
	go test ./internal/static -run '^$$' -fuzz FuzzStaticAnalyze -fuzztime $(FUZZTIME)
