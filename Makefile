# Standard entry points; `make ci` is what the workflow runs on every
# push, `make fuzz` is the scheduled deep run.

.PHONY: build vet test short race bench ci fuzz

# Per-target budget for the native fuzz engines in `make fuzz`.
FUZZTIME ?= 60s
# Number of generated chains the nightly differential sweep checks.
ORACLE_SWEEP ?= 500

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Tier-1 gate: small fixed corpora only, wide sweeps skipped.
short:
	go test -short ./...

race:
	go test -race -short ./...

bench:
	go test -run '^$$' -bench . -benchmem .

ci: build vet race

# Deep verification: the wide differential-oracle sweep over freshly
# generated chains, then every native fuzz target (each seeded from the
# generator's corpus) for FUZZTIME apiece.
fuzz:
	ORACLE_SWEEP=$(ORACLE_SWEEP) go test ./internal/gen/oracle -run TestOracleSweep -count=1 -timeout 30m
	go test ./internal/gen/oracle -run '^$$' -fuzz FuzzGeneratorOracle -fuzztime $(FUZZTIME)
	go test ./internal/u256 -run '^$$' -fuzz FuzzU256VsBigInt -fuzztime $(FUZZTIME)
	go test ./internal/evm -run '^$$' -fuzz FuzzExecuteArbitraryBytecode -fuzztime $(FUZZTIME)
	go test ./internal/evm -run '^$$' -fuzz FuzzProxyProbe -fuzztime $(FUZZTIME)
