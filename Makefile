# Standard entry points; `make ci` is what the workflow runs.

.PHONY: build vet test race bench ci

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -run '^$$' -bench . -benchmem .

ci: build vet race
