// Hidden scan: the paper's headline capability. Generate a contract
// landscape, then find the proxies that NO prior tool can see — contracts
// with neither published source code nor any past transaction — and check
// them for collisions. (Section 7.2: ~1.5 million such contracts exist on
// mainnet.)
package main

import (
	"fmt"

	"repro/internal/crush"
	"repro/internal/dataset"
	"repro/internal/proxion"
	"repro/internal/uschunt"
)

func main() {
	pop := dataset.Generate(dataset.Config{Seed: 2024, Contracts: 2500})
	fmt.Printf("landscape: %d contracts on a %d-block chain\n\n",
		len(pop.Chain.Contracts()), pop.Chain.CurrentBlock())

	det := proxion.NewDetector(pop.Chain)
	hunt := uschunt.New(pop.Registry)
	cr := crush.New(pop.Chain)

	var hidden, hiddenCollisions int
	for _, addr := range pop.Chain.Contracts() {
		// "Hidden" means invisible to both prior approaches: no verified
		// source (USCHunt halts) and no transaction trace (CRUSH blind).
		if pop.Registry.HasSource(addr) || pop.Chain.TxCount(addr) > 0 {
			continue
		}
		rep := det.Check(addr)
		if !rep.IsProxy {
			continue
		}
		hidden++
		// Sanity: the baselines really cannot see this contract.
		if hunt.DetectProxy(addr).Detected || cr.IsProxy(addr) {
			panic("contract is not actually hidden")
		}
		pa := det.AnalyzePair(rep.Address, rep.Logic, pop.Registry)
		if len(pa.Functions) > 0 || len(pa.Storage) > 0 {
			hiddenCollisions++
			fmt.Printf("hidden proxy %s -> %s (%s)\n", rep.Address, rep.Logic, rep.Standard)
			for _, fc := range pa.Functions {
				fmt.Printf("  function collision 0x%x — a honeypot shape\n", fc.Selector)
			}
			for _, sc := range pa.Storage {
				fmt.Printf("  storage collision at slot %s (exploitable=%v)\n", sc.Slot, sc.Exploitable)
			}
		}
	}
	fmt.Printf("\nhidden proxies found: %d (invisible to USCHunt and CRUSH)\n", hidden)
	fmt.Printf("of which carrying collisions: %d\n", hiddenCollisions)
	if hidden == 0 {
		panic("expected hidden proxies in the landscape")
	}
}
