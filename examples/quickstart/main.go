// Quickstart: deploy an upgradeable proxy and its logic contract on the
// simulated chain, detect the proxy with the Proxion pipeline, and check
// the pair for collisions.
package main

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/proxion"
	"repro/internal/solc"
	"repro/internal/u256"
)

func main() {
	c := chain.New()
	deployer := etypes.MustAddress("0x00000000000000000000000000000000000000d0")

	// A logic contract: one stored value with a getter and setter.
	// The logic mirrors the proxy's layout (owner at slot 0, impl at slot 1)
	// before declaring its own variables — the discipline that prevents
	// storage collisions.
	logic := &solc.Contract{
		Name: "CounterV1",
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "impl", Type: solc.TypeAddress},
			{Name: "count", Type: solc.TypeUint256},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "count"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "count"}}},
			{ABI: abi.Function{Name: "increment", Params: []string{"uint256"}},
				Body: []solc.Stmt{solc.AssignArg{Var: "count", Arg: 0}}},
		},
	}
	logicRc := c.Deploy(deployer, solc.CompileInit(solc.MustCompile(logic), nil), 0, u256.Zero())
	fmt.Println("logic deployed at ", logicRc.ContractAddress)

	// An upgradeable proxy delegating to the address stored in slot 1.
	implSlot := etypes.HashFromWord(u256.One())
	proxy := &solc.Contract{
		Name: "CounterProxy",
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "impl", Type: solc.TypeAddress},
		},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot},
	}
	proxyRc := c.Deploy(deployer, solc.CompileInit(solc.MustCompile(proxy), map[etypes.Hash]etypes.Hash{
		implSlot: etypes.HashFromWord(logicRc.ContractAddress.Word()),
	}), 0, u256.Zero())
	fmt.Println("proxy deployed at ", proxyRc.ContractAddress)

	// Use the proxy: the call data is forwarded to the logic, which runs in
	// the proxy's storage.
	caller := etypes.MustAddress("0x00000000000000000000000000000000000000a1")
	set := abi.EncodeCall(abi.SelectorOf("increment(uint256)"), u256.FromUint64(41))
	if rc := c.Execute(caller, proxyRc.ContractAddress, set, 0, u256.Zero()); !rc.Status {
		panic(rc.Err)
	}
	get := abi.EncodeCall(abi.SelectorOf("count()"))
	rc := c.Execute(caller, proxyRc.ContractAddress, get, 0, u256.Zero())
	fmt.Println("count() via proxy =", u256.FromBytes(rc.Output))

	// Detect: the two-step pipeline (opcode filter + EVM emulation with
	// crafted call data) needs neither source code nor past transactions.
	det := proxion.NewDetector(c)
	rep := det.Check(proxyRc.ContractAddress)
	fmt.Printf("detected proxy: %v (target from %s, standard %s)\n",
		rep.IsProxy, rep.Target, rep.Standard)
	fmt.Println("current logic:  ", rep.Logic)

	// Collision analysis for the pair: layouts match here, so it is clean.
	pa := det.AnalyzePair(rep.Address, rep.Logic, nil)
	fmt.Printf("function collisions: %d, storage collisions: %d\n",
		len(pa.Functions), len(pa.Storage))
}
