// Upgrade history: a proxy switches logic contracts over the years;
// Algorithm 1's binary search over the archive recovers every version with
// a handful of getStorageAt calls instead of querying every block.
package main

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/proxion"
	"repro/internal/solc"
)

func main() {
	c := chain.New()
	implSlot := proxion.SlotEIP1967

	proxy := &solc.Contract{
		Name:     "EIP1967Proxy",
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot},
	}
	proxyAddr := etypes.MustAddress("0x0000000000000000000000000000000000003001")
	c.InstallContract(proxyAddr, solc.MustCompile(proxy))

	// Deploy and activate four logic versions across a million blocks.
	versions := []uint64{1_000, 250_000, 600_000, 999_000}
	var logics []etypes.Address
	for i, height := range versions {
		c.AdvanceTo(height)
		logic := &solc.Contract{Name: fmt.Sprintf("LogicV%d", i+1)}
		addr := etypes.MustAddress(fmt.Sprintf("0x00000000000000000000000000000000000031%02d", i))
		c.InstallContract(addr, solc.MustCompile(logic))
		c.SetStorageDirect(proxyAddr, implSlot, etypes.HashFromWord(addr.Word()))
		logics = append(logics, addr)
		fmt.Printf("block %7d: upgraded to %s\n", height, addr)
	}
	c.AdvanceTo(1_200_000)
	fmt.Printf("chain head: block %d\n\n", c.CurrentBlock())

	det := proxion.NewDetector(c)
	rep := det.Check(proxyAddr)
	fmt.Printf("detected: proxy=%v standard=%s impl slot=%s\n", rep.IsProxy, rep.Standard, rep.ImplSlot)

	// Algorithm 1: recover every logic address ever stored in the slot.
	c.ResetAPICalls()
	history := det.LogicHistory(proxyAddr, rep.ImplSlot)
	calls := c.APICalls()
	fmt.Printf("\nlogic history (%d versions, %d upgrades):\n", len(history), det.UpgradeCount(proxyAddr, rep.ImplSlot))
	for _, a := range history {
		fmt.Println("  ", a)
	}
	fmt.Printf("archive calls used: %d (naive scan would need %d)\n", calls, c.CurrentBlock()+1)
	if calls > 400 {
		panic("binary search degenerated")
	}
	for _, want := range logics {
		found := false
		for _, got := range history {
			if got == want {
				found = true
			}
		}
		if !found {
			panic("missing version " + want.Hex())
		}
	}
}
