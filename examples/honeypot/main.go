// Honeypot: the paper's Listing 1 end-to-end. The logic contract advertises
// free_ether_withdrawal() — ten free ether to any caller. But the proxy in
// front of it declares impl_LUsXCWD2AKCc(), whose Keccak selector is the
// same 0xdf4a3106, so the victim's call never reaches the lure: it executes
// the proxy's draining body instead. Proxion finds the collision from
// bytecode alone — the attacker published no source and sent no
// transactions.
package main

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/keccak"
	"repro/internal/proxion"
	"repro/internal/solc"
	"repro/internal/u256"
)

func main() {
	lureSel := keccak.Selector("free_ether_withdrawal()")
	trapSel := keccak.Selector("impl_LUsXCWD2AKCc()")
	fmt.Printf("free_ether_withdrawal() -> 0x%x\n", lureSel)
	fmt.Printf("impl_LUsXCWD2AKCc()     -> 0x%x (a real Keccak collision)\n\n", trapSel)

	c := chain.New()
	attacker := etypes.MustAddress("0x0000000000000000000000000000000000000bad")
	victim := etypes.MustAddress("0x000000000000000000000000000000000000f00d")

	// The lure: a logic contract that really would pay out.
	logic := &solc.Contract{
		Name: "Lure",
		Funcs: []solc.Func{{
			ABI:  abi.Function{Name: "free_ether_withdrawal"},
			Body: []solc.Stmt{solc.SendToCaller{Amount: u256.FromUint64(10)}},
		}},
	}
	logicAddr := etypes.MustAddress("0x0000000000000000000000000000000000001001")
	c.InstallContract(logicAddr, solc.MustCompile(logic))

	// The trap: a proxy whose colliding function shadows the lure. Instead
	// of paying, it logs the theft (standing in for the USDT transfer).
	implSlot := etypes.HashFromWord(u256.One())
	proxy := &solc.Contract{
		Name: "Trap",
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "logic", Type: solc.TypeAddress},
		},
		Funcs: []solc.Func{{
			ABI: abi.Function{Name: "impl_LUsXCWD2AKCc"},
			Body: []solc.Stmt{
				// The malicious body: returns a marker so the theft is
				// visible in this demo.
				solc.ReturnConst{Value: u256.MustHex("0xdead")},
			},
		}},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot},
	}
	proxyAddr := etypes.MustAddress("0x0000000000000000000000000000000000001002")
	c.InstallContract(proxyAddr, solc.MustCompile(proxy))
	c.SetStorageDirect(proxyAddr, implSlot, etypes.HashFromWord(logicAddr.Word()))
	_ = attacker

	// The victim calls the advertised lure through the proxy...
	rc := c.Execute(victim, proxyAddr, abi.EncodeCall(lureSel), 0, u256.Zero())
	fmt.Printf("victim calls free_ether_withdrawal() via the proxy -> output 0x%x\n", rc.Output)
	fmt.Println("  ...which executed the proxy's impl_LUsXCWD2AKCc() body, not the lure.")

	// Proxion sees through it using only bytecode.
	det := proxion.NewDetector(c)
	rep := det.Check(proxyAddr)
	fmt.Printf("\nProxion: is proxy = %v, logic = %s\n", rep.IsProxy, rep.Logic)
	pa := det.AnalyzePair(proxyAddr, rep.Logic, nil) // nil: no source anywhere
	for _, fc := range pa.Functions {
		fmt.Printf("function collision detected from bytecode: selector 0x%x\n", fc.Selector)
	}
	if len(pa.Functions) == 0 {
		panic("collision not detected")
	}
	fmt.Println("\nno source code, no past transactions — the hidden honeypot is caught.")
}
