// Audius: the paper's Listing 2 storage-collision incident end-to-end. The
// proxy keeps its owner address in slot 0; the delegatecalled logic packs
// its initializer guard booleans into the same slot. Writing the owner
// tramples the guard, so initialize() never locks: anyone can call it again
// and seize ownership — which is exactly how the real Audius governance
// contracts were taken over in July 2022.
package main

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/proxion"
	"repro/internal/solc"
	"repro/internal/u256"
)

func main() {
	c := chain.New()
	team := etypes.MustAddress("0x000000000000000000000000000000000000900d")
	attacker := etypes.MustAddress("0x0000000000000000000000000000000000000bad")

	implSlot := etypes.HashFromWord(u256.One())
	logic := &solc.Contract{
		Name: "GovernanceLogic",
		Vars: []solc.Var{
			{Name: "initialized", Type: solc.TypeBool},  // slot 0, byte 0
			{Name: "initializing", Type: solc.TypeBool}, // slot 0, byte 1
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "initialize"},
				Body: []solc.Stmt{
					solc.RequireInitializable{Initialized: "initialized", Initializing: "initializing"},
					solc.AssignConst{Var: "initialized", Value: u256.One()},
					solc.AssignConst{Var: "initializing", Value: u256.Zero()},
					// owner comes from an inherited contract whose layout
					// ALSO starts at slot 0: the fatal overlap.
					solc.AssignCallerToSlot{Slot: etypes.Hash{}, Offset: 0, Size: 20},
				}},
			{ABI: abi.Function{Name: "owner"},
				Body: []solc.Stmt{solc.ReturnSlotField{Slot: etypes.Hash{}, Offset: 0, Size: 20}}},
		},
	}
	logicAddr := etypes.MustAddress("0x0000000000000000000000000000000000002001")
	c.InstallContract(logicAddr, solc.MustCompile(logic))

	proxy := &solc.Contract{
		Name: "AdminUpgradeabilityProxy",
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress}, // slot 0: collides with the guard
			{Name: "logic", Type: solc.TypeAddress}, // slot 1
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "proxyOwner"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "owner"}}},
			{ABI: abi.Function{Name: "upgradeTo", Params: []string{"address"}},
				Body: []solc.Stmt{
					solc.RequireCallerIs{Var: "owner"},
					solc.AssignArg{Var: "logic", Arg: 0},
				}},
		},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot},
	}
	proxyAddr := etypes.MustAddress("0x0000000000000000000000000000000000002002")
	c.InstallContract(proxyAddr, solc.MustCompile(proxy))
	c.SetStorageDirect(proxyAddr, implSlot, etypes.HashFromWord(logicAddr.Word()))

	initSel := abi.SelectorOf("initialize()")
	ownerSel := abi.SelectorOf("owner()")
	ownerOf := func() etypes.Address {
		rc := c.Execute(team, proxyAddr, abi.EncodeCall(ownerSel), 0, u256.Zero())
		return etypes.AddressFromWord(u256.FromBytes(rc.Output))
	}

	// 1. The team initializes, as intended.
	rc := c.Execute(team, proxyAddr, abi.EncodeCall(initSel), 0, u256.Zero())
	fmt.Printf("team initialize():     ok=%v, owner=%s\n", rc.Status, ownerOf())

	// 2. The attacker re-initializes — the guard bits were trampled by the
	// owner write, so this SUCCEEDS.
	rc = c.Execute(attacker, proxyAddr, abi.EncodeCall(initSel), 0, u256.Zero())
	fmt.Printf("attacker initialize(): ok=%v, owner=%s\n", rc.Status, ownerOf())
	if ownerOf() != attacker {
		panic("exploit failed — the reproduction is broken")
	}
	fmt.Println("ownership seized via the storage collision.")

	// 3. Proxion finds the collision statically and verifies the exploit
	// dynamically by replaying exactly this double-initialize.
	det := proxion.NewDetector(c)
	rep := det.Check(proxyAddr)
	pa := det.AnalyzePair(proxyAddr, rep.Logic, nil)
	fmt.Printf("\nProxion: proxy=%v, storage collisions=%d, exploit verified=%v\n",
		rep.IsProxy, len(pa.Storage), pa.ExploitVerified)
	for _, sc := range pa.Storage {
		fmt.Printf("  slot %s: proxy field [%d,%d) vs logic field [%d,%d), exploitable=%v\n",
			sc.Slot, sc.ProxyOffset, sc.ProxyOffset+sc.ProxySize,
			sc.LogicOffset, sc.LogicOffset+sc.LogicSize, sc.Exploitable)
	}
	if !pa.ExploitVerified {
		panic("verification failed")
	}
}
